"""Command-line interface: interaction-cost analysis from a shell.

Subcommands mirror the library's main entry points::

    repro-icost workloads                      # list the synthetic suite
    repro-icost breakdown gzip --focus dl1     # Table 4-style breakdown
    repro-icost breakdown gzip --full dl1,win,dmiss   # power-set rows
    repro-icost profile twolf                  # shotgun profiler vs graph
    repro-icost sensitivity vortex             # Figure 3 window sweep
    repro-icost critical gzip --top 8          # costliest instructions

(also available as ``python -m repro ...``)

Every subcommand additionally understands the global observability
flags (``docs/OBSERVABILITY.md``): ``--trace FILE`` writes a
Perfetto-loadable Chrome trace of the analysis pipeline, ``--metrics``
prints a summary table of pipeline counters after the run, and
``-v``/``--log-level`` control diagnostic logging.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro.obs as obs
from repro.core.categories import BASE_CATEGORIES, Category


def _machine_config(args) -> "MachineConfig":
    from repro.uarch import MachineConfig

    overrides = {}
    for item in args.set or []:
        key, __, value = item.partition("=")
        if not value:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        field = key.strip()
        if field not in MachineConfig.__dataclass_fields__:
            raise SystemExit(f"unknown machine parameter {field!r}")
        overrides[field] = int(value)
    return MachineConfig(**overrides)


def _trace(args):
    from repro.workloads import WORKLOAD_NAMES, get_workload

    if args.workload not in WORKLOAD_NAMES:
        raise SystemExit(
            f"unknown workload {args.workload!r}; see 'repro-icost workloads'")
    return get_workload(args.workload, scale=args.scale, seed=args.seed)


def _pipeline_requested(args) -> bool:
    """Whether any pipeline flag (or the cache env default) is engaged."""
    import os

    return bool(
        getattr(args, "jobs", 1) > 1
        or getattr(args, "windows", 1) > 1
        or getattr(args, "approx", False)
        or getattr(args, "cache_dir", None)
        or getattr(args, "no_cache", False)
        or os.environ.get("REPRO_CACHE_DIR"))


def _cost_provider(args, allow_approx: bool = True):
    """The cost provider behind breakdown/matrix/critical.

    Plain invocations keep the historical monolithic path (naive engine
    by default); any pipeline flag routes through
    :func:`repro.pipeline.run_pipeline` -- exact and bit-identical
    unless ``--approx`` opts into the windowed bounded-error mode.
    """
    trace = _trace(args)
    config = _machine_config(args)
    if _pipeline_requested(args):
        from repro.pipeline import PipelineOptions, run_pipeline

        options = PipelineOptions(
            jobs=getattr(args, "jobs", 1),
            windows=getattr(args, "windows", 1),
            cache_dir=getattr(args, "cache_dir", None),
            no_cache=getattr(args, "no_cache", False),
            approx=allow_approx and getattr(args, "approx", False),
            engine=args.engine)
        return run_pipeline(trace, config=config, options=options)
    from repro.analysis.graphsim import analyze_trace

    return analyze_trace(trace, config=config,
                         engine=args.engine or "naive")


def cmd_workloads(args) -> int:
    """``workloads``: list the synthetic suite with descriptions."""
    from repro.workloads import WORKLOAD_NAMES, workload_description

    for name in WORKLOAD_NAMES:
        print(f"{name:<8} {workload_description(name)}")
    return 0


def cmd_breakdown(args) -> int:
    """``breakdown``: Table 4-style (or power-set) breakdown output."""
    from repro.core import (
        breakdown_to_json,
        breakdowns_to_csv,
        full_interaction_breakdown,
        interaction_breakdown,
        render_breakdown_table,
        render_stacked_bar,
    )

    provider = _cost_provider(args)
    if args.full:
        cats = [Category(c.strip()) for c in args.full.split(",")]
        bd = full_interaction_breakdown(provider, cats,
                                        workload=args.workload,
                                        max_categories=6)
    else:
        focus = Category(args.focus) if args.focus else None
        bd = interaction_breakdown(provider, focus=focus,
                                   workload=args.workload)
    if args.json:
        print(breakdown_to_json(bd))
        return 0
    if args.csv:
        print(breakdowns_to_csv({args.workload: bd}), end="")
        return 0
    print(render_breakdown_table({args.workload: bd},
                                 f"{args.workload}: % of execution time"))
    if args.bars:
        print()
        print(render_stacked_bar(bd))
    return 0


def cmd_characterize(args) -> int:
    """``characterize``: icost fingerprints across the suite."""
    from repro.analysis.characterize import characterize_suite, render_suite_table
    from repro.workloads import WORKLOAD_NAMES

    names = (tuple(n.strip() for n in args.workloads.split(","))
             if args.workloads else WORKLOAD_NAMES)
    chars = characterize_suite(names, config=_machine_config(args),
                               scale=args.scale, seed=args.seed)
    print(render_suite_table(chars))
    print()
    for ch in chars:
        print(ch.advice())
    return 0


def cmd_profile(args) -> int:
    """``profile``: shotgun-profile a workload and compare to the graph."""
    from repro.analysis.graphsim import analyze_trace
    from repro.core import interaction_breakdown
    from repro.core.report import render_comparison
    from repro.profiler import profile_trace

    trace = _trace(args)
    config = _machine_config(args)
    focus = Category(args.focus) if args.focus else None
    prof_provider = profile_trace(trace, config, fragments=args.fragments,
                                  seed=args.seed)
    prof = interaction_breakdown(prof_provider, focus=focus)
    full = interaction_breakdown(
        analyze_trace(trace, config, engine=args.engine), focus=focus)
    rows = {
        e.label: {"fullgraph": e.percent, "profiler": prof.percent(e.label)}
        for e in full.entries if e.kind in ("base", "interaction")
    }
    print(render_comparison(rows, ["fullgraph", "profiler"],
                            f"{args.workload}: graph vs shotgun profiler"))
    stats = prof_provider.stats
    print(f"\nfragments={prof_provider.fragment_count} "
          f"abort={stats.abort_rate:.0%} "
          f"defaults={stats.default_rate:.1%}")
    return 0


def cmd_matrix(args) -> int:
    """``matrix``: the full pairwise interaction-cost matrix."""
    from repro.analysis.matrix import interaction_matrix

    provider = _cost_provider(args)
    matrix = interaction_matrix(provider, workload=args.workload)
    print(matrix.render())
    a, b, value = matrix.strongest_serial()
    print(f"\nstrongest serial  : {a.value}+{b.value} ({value:+.1f}%)")
    a, b, value = matrix.strongest_parallel()
    print(f"strongest parallel: {a.value}+{b.value} ({value:+.1f}%)")
    return 0


def cmd_report(args) -> int:
    """``report``: write a self-contained HTML analysis report."""
    from repro.core.categories import Category
    from repro.viz.report import save_report

    focus = Category(args.focus) if args.focus else Category.DL1
    save_report(_trace(args), args.output, config=_machine_config(args),
                focus=focus)
    print(f"wrote {args.output}")
    return 0


def cmd_sensitivity(args) -> int:
    """``sensitivity``: the Figure 3 window-size sweep."""
    from repro.analysis.sensitivity import window_speedup_curves
    from repro.pipeline import open_cache

    latencies = [int(x) for x in args.dl1.split(",")]
    windows = [int(x) for x in args.windows.split(",")]
    cache = open_cache(args.cache_dir, args.no_cache)
    curves = window_speedup_curves(_trace(args), latencies, windows,
                                   config=_machine_config(args),
                                   jobs=args.jobs, cache=cache)
    print(f"{args.workload}: window-size speedup (%) per dl1 latency")
    print(f"{'window':>8}" + "".join(f"  lat={lat}" for lat in latencies))
    for i, window in enumerate(windows):
        row = f"{window:>8}"
        for lat in latencies:
            row += f"{curves[lat][i][1]:7.1f}"
        print(row)
    return 0


def cmd_phases(args) -> int:
    """``phases``: per-segment cost vectors and phase-change detection."""
    from repro.analysis.phases import (
        detect_phase_changes,
        render_phase_table,
        segment_profiles,
    )

    profiles = segment_profiles(_trace(args), segment_length=args.segment,
                                config=_machine_config(args))
    print(render_phase_table(profiles))
    changes = detect_phase_changes(profiles, threshold=args.threshold)
    if changes:
        print(f"\nphase changes at segments: {changes}")
    else:
        print("\nno phase changes detected")
    return 0


def cmd_critical(args) -> int:
    """``critical``: costliest instructions + critical-path profile."""
    from repro.graph.critical_path import edge_kind_profile
    from repro.graph.slack import top_critical_instructions

    # critical needs the monolithic graph -- always exact mode
    provider = _cost_provider(args, allow_approx=False)
    result = provider.result
    ranked = top_critical_instructions(
        provider.analyzer, range(len(result.events)), top=args.top)
    print(f"{args.workload}: costliest dynamic instructions")
    print(f"{'seq':>6} {'pc':>8} {'cost':>6}  instruction")
    for seq, cost in ranked:
        inst = result.trace.insts[seq]
        print(f"{seq:>6} {inst.pc:>#8x} {cost:>6.0f}  {inst.static}")
    print("\ncritical-path cycles by edge kind:")
    for kind, cycles in sorted(edge_kind_profile(provider.graph).items(),
                               key=lambda kv: -kv[1]):
        print(f"  {kind.name:<4} {cycles}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-icost",
        description="Interaction-cost microarchitectural bottleneck analysis",
    )

    # global observability flags, attached to every subcommand
    obs_flags = argparse.ArgumentParser(add_help=False)
    group = obs_flags.add_argument_group("observability")
    group.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Chrome trace-event JSON of the "
                            "analysis pipeline (load in ui.perfetto.dev)")
    group.add_argument("--metrics", action="store_true",
                       help="print a pipeline metrics summary after the run")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="increase log verbosity (-v info, -vv debug)")
    group.add_argument("--log-level", default=None,
                       choices=["debug", "info", "warning", "error"],
                       help="explicit log level (overrides -v)")

    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name, **kwargs):
        return sub.add_parser(name, parents=[obs_flags], **kwargs)

    def common(p):
        p.add_argument("workload", help="suite workload name (see 'workloads')")
        p.add_argument("--scale", type=float, default=1.0,
                       help="trace-length multiplier (default 1.0)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override a MachineConfig field, e.g. "
                            "--set dl1_latency=4")

    def engine_flag(p):
        from repro.graph.engine import ENGINE_NAMES

        p.add_argument("--engine", choices=ENGINE_NAMES, default=None,
                       help="cost engine for graph measurements: the "
                            "naive reference sweep, the batched "
                            "vectorized/incremental kernel, or the "
                            "process-pool fan-out (default: naive, or "
                            "batched when the pipeline is engaged)")

    def pipeline_flags(p, windows=True, approx=False):
        group = p.add_argument_group(
            "pipeline (docs/PIPELINE.md)")
        group.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes for sharded "
                                "build/analysis (default 1)")
        if windows:
            group.add_argument("--windows", type=int, default=1,
                               metavar="N",
                               help="shard the run into N contiguous "
                                    "windows (default 1; exact either "
                                    "way)")
        group.add_argument("--cache-dir", metavar="DIR", default=None,
                           help="content-addressed artifact cache "
                                "directory (default: $REPRO_CACHE_DIR)")
        group.add_argument("--no-cache", action="store_true",
                           help="disable the artifact cache even if "
                                "$REPRO_CACHE_DIR is set")
        if approx:
            group.add_argument("--approx", action="store_true",
                               help="bounded-error windowed analysis: "
                                    "sum per-window costs over "
                                    "truncated window graphs instead "
                                    "of stitching an exact graph")

    add_command("workloads", help="list the synthetic suite") \
        .set_defaults(func=cmd_workloads)

    p = add_command("breakdown", help="interaction-cost breakdown")
    common(p)
    engine_flag(p)
    p.add_argument("--focus", choices=[c.value for c in BASE_CATEGORIES],
                   help="add pairwise interaction rows with this category")
    p.add_argument("--full", metavar="CATS",
                   help="comma-separated categories for a full power-set "
                        "breakdown (max 6)")
    p.add_argument("--bars", action="store_true",
                   help="also print the Figure 1b stacked bars")
    p.add_argument("--json", action="store_true",
                   help="emit the breakdown as JSON")
    p.add_argument("--csv", action="store_true",
                   help="emit the breakdown as CSV")
    pipeline_flags(p, approx=True)
    p.set_defaults(func=cmd_breakdown)

    p = add_command("characterize",
                       help="icost fingerprint of the suite")
    p.add_argument("--workloads", metavar="NAMES",
                   help="comma-separated subset (default: all twelve)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--set", action="append", metavar="KEY=VALUE")
    p.set_defaults(func=cmd_characterize)

    p = add_command("profile", help="shotgun-profile and compare")
    common(p)
    engine_flag(p)
    p.add_argument("--focus", choices=[c.value for c in BASE_CATEGORIES])
    p.add_argument("--fragments", type=int, default=12)
    p.set_defaults(func=cmd_profile)

    p = add_command("matrix", help="pairwise interaction-cost matrix")
    common(p)
    engine_flag(p)
    pipeline_flags(p, approx=True)
    p.set_defaults(func=cmd_matrix)

    p = add_command("report", help="self-contained HTML analysis report")
    common(p)
    p.add_argument("--focus", choices=[c.value for c in BASE_CATEGORIES])
    p.add_argument("-o", "--output", default="report.html")
    p.set_defaults(func=cmd_report)

    p = add_command("sensitivity", help="window-size sweep (Figure 3)")
    common(p)
    p.add_argument("--dl1", default="1,2,3,4",
                   help="dl1 latencies, comma separated")
    p.add_argument("--windows", default="64,80,96,112,128",
                   help="window sizes, comma separated")
    # note: --windows here means *machine* window sizes (the Figure 3
    # sweep axis), so the pipeline sharding flag is omitted
    pipeline_flags(p, windows=False)
    p.set_defaults(func=cmd_sensitivity)

    p = add_command("phases", help="segment cost vectors + phase changes")
    common(p)
    p.add_argument("--segment", type=int, default=500,
                   help="instructions per segment (default 500)")
    p.add_argument("--threshold", type=float, default=40.0,
                   help="L1 cost-vector jump marking a phase change")
    p.set_defaults(func=cmd_phases)

    p = add_command("critical", help="costliest instructions + CP profile")
    common(p)
    engine_flag(p)
    pipeline_flags(p)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_critical)

    return parser


def _log_level(args) -> str:
    if args.log_level:
        return args.log_level
    return {0: "warning", 1: "info"}.get(args.verbose, "debug")


def _warn_native_fallback() -> None:
    """Surface a silent C-kernel compile/load failure, once per process."""
    from repro.graph.engine import native_fallback_warning

    message = native_fallback_warning()
    if message:
        print(message, file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    obs.setup_logging(_log_level(args))
    collector = obs.enable() if (args.trace or args.metrics) else None
    try:
        code = args.func(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    finally:
        if collector is not None:
            obs.disable()
    _warn_native_fallback()
    if collector is not None:
        if args.trace:
            obs.write_trace(collector, args.trace)
            print(f"wrote pipeline trace to {args.trace} "
                  f"(open in https://ui.perfetto.dev)", file=sys.stderr)
        if args.metrics:
            print()
            print(obs.render_metrics_table(collector))
    return code


if __name__ == "__main__":
    sys.exit(main())
