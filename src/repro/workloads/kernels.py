"""Composable program fragments the workload suite is assembled from.

Each emitter appends instructions to a :class:`ProgramBuilder` and, when
it needs initialised data, writes into a shared memory image.  Register
conventions: r1-r15 kernel scratch, r16-r19 kernel-private accumulators,
r20-r25 loop counters, r26-r30 base addresses, r31 the link register.

Data-layout conventions: all arrays are 8-byte-word based, and the
memory regions of different kernels are disjoint so their cache/TLB
behaviours compose predictably.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.isa.program import ProgramBuilder

#: Word size used by all kernels (one element per 8 bytes).
WORD = 8
#: One cache line holds this many words (64-byte lines).
WORDS_PER_LINE = 8


class MemoryImage:
    """An initial data-memory image under construction.

    Every region carries a *warmth* declaring its steady-state cache
    residency, which the simulator establishes before timing (the
    paper measures after an 8-billion-instruction warm-up, so hot
    structures are resident there too):

    - ``"l1"``: small hot structures (chase chains, decision oracles);
      resident in L1D, L2 and the DTLB.
    - ``"l2"``: working sets that are re-scanned but exceed the L1
      (streams, mid-size blocks); resident in L2 and the DTLB, so
      their accesses are steady-state 12-cycle L1 misses.
    - ``"cold"``: giant heaps touched once (mcf-style lists); their
      memory-latency misses *are* the steady state.
    """

    WARMTHS = ("cold", "l2", "l1")

    def __init__(self) -> None:
        self.data: Dict[int, int] = {}
        self.regions: List[tuple] = []  # (base, bytes, warmth)
        self._next_region = 0x10_0000   # regions start at 1 MiB

    def alloc(self, words: int, align: int = 4096,
              warmth: str = "cold") -> int:
        """Reserve a fresh region of *words* 8-byte words; returns base."""
        if warmth not in self.WARMTHS:
            raise ValueError(f"unknown warmth {warmth!r}")
        base = self._next_region
        size = words * WORD
        self._next_region += size + (-size % align) + align
        self.regions.append((base, size, warmth))
        return base

    def fill(self, base: int, values: List[int]) -> None:
        """Write *values* as consecutive words starting at *base*."""
        for i, value in enumerate(values):
            self.data[base + i * WORD] = value

    def ranges(self, warmth: str):
        """(start, end) byte ranges of all regions with *warmth*."""
        return tuple((base, base + size) for base, size, w in self.regions
                     if w == warmth)


# ----------------------------------------------------------------------
# data builders


def build_linked_list(mem: MemoryImage, nodes: int, rng: random.Random,
                      value_fn=None, warmth: str = "cold") -> int:
    """A randomly-permuted singly linked list; returns the head address.

    Node layout: word 0 = next-node address (0 terminates), word 1 = a
    payload value.  The random permutation defeats spatial locality, so
    traversal produces dependent cache (and, for large lists, TLB)
    misses -- the mcf-style behaviour.
    """
    order = list(range(nodes))
    rng.shuffle(order)
    base = mem.alloc(nodes * 2, warmth=warmth)
    addr_of = [base + i * 2 * WORD for i in range(nodes)]
    for pos, node in enumerate(order):
        nxt = addr_of[order[pos + 1]] if pos + 1 < nodes else 0
        value = value_fn(pos) if value_fn else rng.randrange(0, 100)
        mem.fill(addr_of[node], [nxt, value])
    return addr_of[order[0]]


def build_random_words(mem: MemoryImage, words: int, rng: random.Random,
                       lo: int = 0, hi: int = 100,
                       warmth: str = "cold") -> int:
    """An array of uniform random values; returns the base address."""
    base = mem.alloc(words, warmth=warmth)
    mem.fill(base, [rng.randrange(lo, hi) for _ in range(words)])
    return base


def build_permutation_chain(mem: MemoryImage, words: int,
                            rng: random.Random, warmth: str = "l1") -> int:
    """An array forming one full random cycle: ``a[i]`` holds the byte
    offset of the next element.  Chasing it produces strictly serial
    load-to-load dependences; sized to stay L1-resident it is the
    purest driver of dl1-loop cost."""
    order = list(range(words))
    rng.shuffle(order)
    base = mem.alloc(words, warmth=warmth)
    values = [0] * words
    for pos, idx in enumerate(order):
        values[idx] = order[(pos + 1) % words] * WORD
    mem.fill(base, values)
    return base


def build_index_array(mem: MemoryImage, entries: int, target_words: int,
                      rng: random.Random, warmth: str = "l1") -> int:
    """An array of random word indices into a *target_words*-sized array."""
    base = mem.alloc(entries, warmth=warmth)
    mem.fill(base, [rng.randrange(target_words) * WORD for _ in range(entries)])
    return base


# ----------------------------------------------------------------------
# code emitters


def emit_pointer_chase(b: ProgramBuilder, ptr_reg: int, value_reg: int,
                       steps: int, branch_on_value: bool = False,
                       tag: str = "", threshold: int = 50) -> None:
    """Walk *steps* linked-list nodes starting at the address in *ptr_reg*.

    Each step is a dependent load (the dmiss chain).  With
    *branch_on_value*, each node's payload (uniform in [0, 100)) feeds
    a conditional branch taken when ``payload < threshold`` --
    unpredictable in proportion to ``min(threshold, 100-threshold)``,
    producing the branch-after-missing-load pattern behind the paper's
    mcf/parser bmisp+dmiss serial interaction.
    """
    for i in range(steps):
        b.ld(value_reg, ptr_reg, WORD)      # payload
        b.ld(ptr_reg, ptr_reg, 0)           # next pointer (dependent miss)
        if branch_on_value:
            label = f"pc_{tag}_{i}"
            b.slti(value_reg, value_reg, threshold)
            b.beq(value_reg, 0, label)
            b.addi(16, 16, 1)               # then-side work
            b.label(label)
        else:
            b.add(16, 16, value_reg)


def emit_stream(b: ProgramBuilder, base_reg: int, count: int,
                stride_words: int, acc_reg: int = 17,
                dependent_alu: int = 0) -> None:
    """Load *count* elements at a fixed stride, accumulating into *acc_reg*.

    Independent loads overlap freely until the window fills, producing
    window-limited behaviour (the gap/vortex pattern).  Each loaded
    value optionally feeds a chain of *dependent_alu* one-cycle ops,
    putting dl1/dmiss latency in series with shalu work.
    """
    for i in range(count):
        b.ld(1, base_reg, i * stride_words * WORD)
        for _ in range(dependent_alu):
            b.addi(1, 1, 1)
        b.add(acc_reg, acc_reg, 1)


def emit_l1_chase(b: ProgramBuilder, base_reg: int, ptr_reg: int,
                  links: int) -> None:
    """Chase *links* steps of a permutation chain resident in L1.

    Each link is an address add plus a dependent load: with the
    Section 4.1 machine (four-cycle dl1) every link contributes five
    strictly serial cycles, one of them shalu -- which is where the
    paper's dl1+shalu serial interaction comes from.
    """
    for _ in range(links):
        b.add(3, base_reg, ptr_reg)
        b.ld(ptr_reg, 3, 0)


def emit_alu_chain(b: ProgramBuilder, reg: int, length: int,
                   op: str = "addi") -> None:
    """A serial chain of *length* dependent one-cycle integer ops."""
    for _ in range(length):
        if op == "addi":
            b.addi(reg, reg, 1)
        elif op == "xor":
            b.xor(reg, reg, reg)
        else:
            raise ValueError(op)


def emit_ilp_alu(b: ProgramBuilder, regs: List[int], rounds: int) -> None:
    """Independent ALU work across *regs*: bandwidth-bound, no chains."""
    for _ in range(rounds):
        for reg in regs:
            b.addi(reg, reg, 1)


def emit_fp_chain(b: ProgramBuilder, freg: int, length: int,
                  op: str = "fadd") -> None:
    """A serial chain of multi-cycle floating-point ops (lgalu)."""
    for _ in range(length):
        if op == "fadd":
            b.fadd(freg, freg, freg)
        elif op == "fmul":
            b.fmul(freg, freg, freg)
        elif op == "fdiv":
            b.fdiv(freg, freg, freg)
        else:
            raise ValueError(op)


def emit_random_branches(b: ProgramBuilder, data_reg: int,
                         count: int, tag: str, work: int = 2) -> None:
    """*count* branches whose directions come from random data in memory.

    Each branch loads the next word of a random array, advancing
    *data_reg*, and branches on it being nonzero.  History predictors
    cannot learn random directions: with values uniform in [0, hi) the
    per-branch mispredict rate is about ``min(1/hi, 1 - 1/hi)``, so the
    data builder's ``hi`` is the bias knob (hi=2 gives ~50%, hi=4 gives
    ~25%).  The factory must allocate fresh data for every execution of
    these branches -- re-reading the same words makes the directions
    per-PC constants the bimodal table learns perfectly.
    """
    for i in range(count):
        label = f"rb_{tag}_{i}"
        b.ld(2, data_reg, 0)
        b.addi(data_reg, data_reg, WORD)
        b.bne(2, 0, label)
        for _ in range(work):
            b.addi(16, 16, 1)
        b.label(label)
        b.addi(17, 17, 1)


def emit_biased_branches(b: ProgramBuilder, counter_reg: int, count: int,
                         modulus: int, tag: str) -> None:
    """Branches with a periodic pattern the combining predictor learns."""
    for i in range(count):
        label = f"bb_{tag}_{i}"
        b.addi(counter_reg, counter_reg, 1)
        b.slti(3, counter_reg, modulus)
        b.bne(3, 0, label)
        b.addi(counter_reg, 0, 0)
        b.label(label)


def emit_indexed_loads(b: ProgramBuilder, index_base_reg: int,
                       table_base_reg: int, count: int,
                       dependent_alu: int = 1) -> None:
    """Gather: load an index, then load through it (two-level load chain).

    The parser/twolf-style pattern: load-to-load dependences through a
    table, mixing dl1 latency chains with data-cache misses when the
    table exceeds the cache.
    """
    for i in range(count):
        b.ld(4, index_base_reg, i * WORD)
        b.add(4, 4, table_base_reg)
        b.ld(5, 4, 0)
        for _ in range(dependent_alu):
            b.addi(5, 5, 3)
        b.add(17, 17, 5)


def emit_store_burst(b: ProgramBuilder, base_reg: int, count: int,
                     stride_words: int = 1) -> None:
    """A burst of stores, stressing store-commit bandwidth (CC edges)."""
    for i in range(count):
        b.st(17, base_reg, i * stride_words * WORD)


def emit_call_farm(b: ProgramBuilder, names: List[str]) -> None:
    """Call each function in *names* once (functions emitted separately)."""
    for name in names:
        b.call(name)


def emit_function(b: ProgramBuilder, name: str, body) -> None:
    """Define function *name*: label, body emitter, return."""
    b.label(name)
    body(b)
    b.ret()


def emit_dispatch_table(b: ProgramBuilder, table_reg: int, case_count: int,
                        selector_base_reg: int, tag: str,
                        case_body=None) -> List[str]:
    """An interpreter-style indirect dispatch loop (the perl pattern).

    Loads the next case address from a jump table indexed by random
    selectors, then ``jr`` to it; indirect-target mispredicts dominate
    when selectors are random.  Case bodies fall through to a common
    continuation label; the loop runs until r24 reaches zero.

    Returns the case labels in table order -- after ``build()`` the
    factory resolves them to PCs and writes them into the jump table's
    memory image.
    """
    cont = f"disp_cont_{tag}"
    loop = f"disp_loop_{tag}"
    b.label(loop)
    b.ld(6, selector_base_reg, 0)            # selector: case index * WORD
    b.addi(selector_base_reg, selector_base_reg, WORD)
    b.add(6, 6, table_reg)
    b.ld(7, 6, 0)                            # case target PC
    b.jr(7)
    case_labels = []
    for c in range(case_count):
        label = f"disp_case_{tag}_{c}"
        case_labels.append(label)
        b.label(label)
        if case_body is not None:
            case_body(b, c)
        else:
            b.addi(16, 16, c + 1)
        b.j(cont)
    b.label(cont)
    b.addi(24, 24, -1)
    b.bne(24, 0, loop)
    return case_labels
