"""The synthetic workload suite.

Twelve programs named after the SPECint2000 suite the paper evaluates,
each engineered to echo its namesake's dominant bottleneck mix (e.g.
``mcf`` is a pointer chase over a multi-megabyte heap whose branches
depend on missing loads; ``vortex`` is window-limited with almost no
mispredicts).  Real Alpha binaries are unavailable offline, and the
shotgun profiler needs genuine binaries with reconstructable control
flow, so each workload is an actual TinyRISC program executed to a
committed-path trace -- not a statistical event stream.
"""

from repro.workloads.registry import (
    WORKLOAD_NAMES,
    TABLE4BC_NAMES,
    get_workload,
    get_program,
    workload_description,
)
from repro.workloads.synthetic import fuzz_program, random_program

__all__ = [
    "WORKLOAD_NAMES",
    "TABLE4BC_NAMES",
    "get_workload",
    "get_program",
    "workload_description",
    "fuzz_program",
    "random_program",
]
