"""A workload built to be prefetched -- the paper's opening scenario.

Each iteration performs three gather loads into cold memory:

- slots ``a`` and ``b``: two *independent* gathers issued back to back.
  They miss in parallel, so each one's individual cost is ~zero -- the
  other covers it -- yet together they bound the iteration.  This is
  exactly the Section 1/2.2 example of a parallel interaction that
  individual-cost rankings cannot see.
- slot ``c``: a lone gather whose value feeds a dependent chain; it is
  partially exposed, so its *individual* cost is visibly nonzero.

The factory can software-pipeline any subset of the slots: the index
arrays are sequential and L1-resident, so the address of iteration
``i + distance`` is computable early and a PREFETCH issued for it.
``repro.analysis.prefetch`` chooses the subset; this module just
builds the program either way.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable

from repro.isa.program import ProgramBuilder
from repro.workloads import kernels as K
from repro.workloads.kernels import WORD, MemoryImage
from repro.workloads.spec import Workload, _load_address

#: The prefetchable load slots, in program order.
SLOTS = ("a", "b", "c")

#: (index-array register, region register) per slot.
_SLOT_REGS = {"a": (22, 23), "b": (24, 25), "c": (26, 27)}


def make_prefetch_workload(plan: Iterable[str] = (), distance: int = 6,
                           iters: int = 160, seed: int = 0) -> Workload:
    """Build the workload with the slots in *plan* prefetched.

    *distance* is the software-pipelining depth in iterations; the
    returned workload carries ``slot_pcs`` mapping each slot name to
    the PC of its demand load, for per-static-load icost analysis.
    """
    plan = frozenset(plan)
    unknown = plan - set(SLOTS)
    if unknown:
        raise ValueError(f"unknown prefetch slots: {sorted(unknown)}")
    rng = random.Random(seed ^ 0x707265)
    mem = MemoryImage()
    region_words = 4 * 1024 * 1024 // WORD
    slots_data = {}
    for slot in SLOTS:
        # a and b gather from cold memory (the expensive parallel pair);
        # c's region is L2-resident, so its miss is short and mostly
        # hidden behind the pair -- the 'secondary' load an individual
        # ranking nevertheless scores highest
        warmth = "l2" if slot == "c" else "cold"
        region = K.build_random_words(mem, region_words, rng, lo=0, hi=100,
                                      warmth=warmth)
        idx = K.build_index_array(mem, iters + distance + 2, region_words,
                                  rng, warmth="l1")
        slots_data[slot] = (idx, region)

    b = ProgramBuilder("prefetchable")
    for slot, (idx_reg, region_reg) in _SLOT_REGS.items():
        idx, region = slots_data[slot]
        _load_address(b, idx_reg, idx)
        _load_address(b, region_reg, region)
    b.addi(20, 0, iters)
    b.label("outer")

    # software prefetches for iteration i+distance
    for slot in SLOTS:
        if slot not in plan:
            continue
        idx_reg, region_reg = _SLOT_REGS[slot]
        b.ld(2, idx_reg, distance * WORD)
        b.add(2, 2, region_reg)
        b.prefetch(2, 0)

    # slot a and b: back-to-back independent gathers (parallel misses)
    for slot in ("a", "b"):
        idx_reg, region_reg = _SLOT_REGS[slot]
        b.ld(4, idx_reg, 0)
        b.add(4, 4, region_reg)
        b.ld(5 if slot == "a" else 6, 4, 0)
    b.add(17, 5, 6)            # join the pair

    # integer work in parallel with slot c's miss
    b.addi(18, 0, 1)
    K.emit_alu_chain(b, reg=18, length=30)

    # slot c: a lone gather feeding a dependent chain
    idx_reg, region_reg = _SLOT_REGS["c"]
    b.ld(7, idx_reg, 0)
    b.add(7, 7, region_reg)
    b.ld(8, 7, 0)
    for __ in range(6):
        b.addi(8, 8, 1)        # dependent tail: exposes part of the miss
    b.add(17, 17, 8)

    for idx_reg, __ in _SLOT_REGS.values():
        b.addi(idx_reg, idx_reg, WORD)
    b.addi(20, 20, -1)
    b.bne(20, 0, "outer")
    b.halt()

    program = b.build()
    workload = Workload("prefetchable",
                        "three-slot gather loop for prefetch feedback",
                        program, mem.data,
                        mem.ranges("l1"), mem.ranges("l2"))
    workload.slot_pcs = _find_slot_pcs(program)
    return workload


def _find_slot_pcs(program) -> Dict[str, int]:
    """PCs of the three demand loads, identified by their dst registers."""
    from repro.isa.instructions import Opcode

    pcs: Dict[str, int] = {}
    by_dst = {5: "a", 6: "b", 8: "c"}
    for inst in program:
        if inst.opcode is Opcode.LD and inst.dst in by_dst:
            pcs[by_dst[inst.dst]] = inst.pc
    assert set(pcs) == set(SLOTS)
    return pcs
