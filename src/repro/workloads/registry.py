"""Name-based access to the workload suite, with trace caching."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Tuple

import repro.obs as obs
from repro.isa.program import Program
from repro.isa.trace import Trace
from repro.workloads import spec
from repro.workloads.spec import Workload

_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "bzip": spec.make_bzip,
    "crafty": spec.make_crafty,
    "eon": spec.make_eon,
    "gap": spec.make_gap,
    "gcc": spec.make_gcc,
    "gzip": spec.make_gzip,
    "mcf": spec.make_mcf,
    "parser": spec.make_parser,
    "perl": spec.make_perl,
    "twolf": spec.make_twolf,
    "vortex": spec.make_vortex,
    "vpr": spec.make_vpr,
}

#: The full suite, in Table 4a's column order.
WORKLOAD_NAMES: Tuple[str, ...] = tuple(sorted(_FACTORIES))

#: The subset the paper shows for Tables 4b and 4c.
TABLE4BC_NAMES: Tuple[str, ...] = ("gap", "gcc", "gzip", "mcf", "parser")


def get_workload_object(name: str, scale: float = 1.0,
                        seed: int = 0) -> Workload:
    """The :class:`Workload` (program + memory image) for *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        ) from None
    return factory(scale=scale, seed=seed)


@lru_cache(maxsize=64)
def _generate_trace(name: str, scale: float, seed: int) -> Trace:
    with obs.span("workload.trace", workload=name, scale=scale,
                  seed=seed) as sp:
        trace = get_workload_object(name, scale, seed).trace()
        sp.set(insns=len(trace.insts))
    return trace


def get_workload(name: str, scale: float = 1.0, seed: int = 0) -> Trace:
    """The committed-path dynamic trace of workload *name*.

    Traces are deterministic in (name, scale, seed) and cached, since
    benchmark tables re-simulate the same trace many times.
    """
    hits_before = _generate_trace.cache_info().hits
    trace = _generate_trace(name, scale, seed)
    if _generate_trace.cache_info().hits > hits_before:
        obs.count("workload.trace.cache_hit")
    else:
        obs.count("workload.trace.generated")
    return trace


def get_program(name: str, scale: float = 1.0, seed: int = 0) -> Program:
    """The program binary of workload *name* (for profiler PC inference)."""
    return get_workload_object(name, scale, seed).program


def workload_description(name: str) -> str:
    """One-line behavioural description of workload *name*."""
    return get_workload_object(name, scale=0.01).description
