"""The twelve SPECint2000-named synthetic workloads.

Each factory composes kernels from :mod:`repro.workloads.kernels` into
a program whose bottleneck mix echoes its namesake's Table 4a profile
(the dominant categories and the headline interactions, not the exact
percentages -- see DESIGN.md for the substitution rationale).

All factories accept ``scale`` (multiplies trace length) and ``seed``
(controls random data), so the suite is deterministic.  At scale 1.0
each trace is roughly 4k-20k dynamic instructions -- long enough for
predictors, caches and the shotgun profiler's 1000-instruction
signature samples to reach steady state, short enough that the 2^n
multisim validation stays tractable in pure Python.

The ingredients map onto categories as follows:

==========================  =============================================
ingredient                  categories driven
==========================  =============================================
``emit_l1_chase``           dl1 (serial load-use), a little shalu
``emit_stream``             dmiss + win (independent misses fill the ROB)
gathers into big regions    dmiss (L2-hit or memory misses)
``emit_pointer_chase``      dmiss chains; with value branches, bmisp
``emit_random_branches``    bmisp (bias set by the data's ``hi``)
``emit_alu_chain``          shalu (serial), win via cross-iteration overlap
``emit_ilp_alu``            bw (wider than the 6-way machine)
``emit_fp_chain``           lgalu
call farms w/ big bodies    imiss (footprint beyond the 32 KiB L1I)
``emit_store_burst``        bw (store-commit bandwidth)
==========================  =============================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.isa.executor import Executor
from repro.isa.program import Program, ProgramBuilder
from repro.isa.trace import Trace
from repro.workloads import kernels as K
from repro.workloads.kernels import WORD, MemoryImage


@dataclass
class Workload:
    """A program plus its initial data-memory image and warmth info."""

    name: str
    description: str
    program: Program
    memory: Dict[int, int] = field(default_factory=dict)
    warm_l1_ranges: tuple = ()
    warm_l2_ranges: tuple = ()

    def trace(self, max_insts: int = 2_000_000) -> Trace:
        """Execute the workload to its committed-path dynamic trace."""
        trace = Executor(self.program, max_insts=max_insts,
                         memory_init=self.memory).run()
        trace.warm_l1_ranges = self.warm_l1_ranges
        trace.warm_l2_ranges = self.warm_l2_ranges
        return trace


def _iters(base: int, scale: float) -> int:
    return max(1, round(base * scale))


def _load_address(b: ProgramBuilder, reg: int, addr: int) -> None:
    """Materialise a (possibly >16-bit) address constant into *reg*."""
    b.lui(reg, addr >> 16)
    low = addr & 0xFFFF
    if low:
        b.addi(reg, reg, low)


def _emit_gathers(b: ProgramBuilder, idx_reg: int, table_reg: int,
                  count: int, branch_tag: str = "", first_offset: int = 0
                  ) -> None:
    """*count* independent random gathers; optionally branch on each
    loaded value (nonzero-taken), then advance the index stream."""
    for i in range(count):
        b.ld(4, idx_reg, (first_offset + i) * WORD)
        b.add(4, 4, table_reg)
        b.ld(5, 4, 0)
        if branch_tag:
            label = f"ga_{branch_tag}_{i}"
            b.bne(5, 0, label)
            b.addi(16, 16, 1)
            b.label(label)
        else:
            b.add(17, 17, 5)
    b.addi(idx_reg, idx_reg, count * WORD)


# ----------------------------------------------------------------------


def make_mcf(scale: float = 1.0, seed: int = 0) -> Workload:
    """Pointer chasing over a multi-megabyte heap, branches fed by misses.

    Shape targets: dmiss dominates everything; bmisp substantial and
    *serially interacting* with dmiss (Table 4c); dl1 and win small.
    The structure makes the interaction real: each node's payload walks
    an L1 cost table and feeds a branch that gates two *independent*
    arc gathers -- a mispredict destroys that memory parallelism, and
    a faster miss resolves the branch sooner, so idealizing dmiss
    genuinely shrinks the mispredict cost.
    """
    rng = random.Random(seed ^ 0x6D6366)
    mem = MemoryImage()
    steps = _iters(550, scale)
    # the node list lives in the L2-resident part of the working set:
    # every hop is a 12-cycle L1 miss, the paper-mcf common case
    head = K.build_linked_list(mem, 30_000, rng, warmth="l2")
    # arcs: a multi-megabyte cold region scanned through random indices
    arc_words = 4 * 1024 * 1024 // WORD
    arcs = K.build_random_words(mem, arc_words, rng)
    arc_idx = K.build_index_array(mem, 2 * (steps + 2), arc_words, rng)
    # an L1-resident cost table indexed by node payloads: the dl1 hop
    # between the miss and the branch it feeds
    cost_tbl = K.build_random_words(mem, 128, rng, warmth="l1")

    b = ProgramBuilder("mcf")
    _load_address(b, 26, head)
    _load_address(b, 27, arc_idx)
    _load_address(b, 28, arcs)
    _load_address(b, 29, cost_tbl)
    chunk = 20
    b.addi(20, 0, max(1, steps // chunk))
    b.label("outer")
    for i in range(chunk):
        label = f"mc_{i}"
        b.ld(2, 26, WORD)            # node payload (memory-miss chain)
        b.ld(26, 26, 0)              # next node (dependent miss)
        b.sll(2, 2, 3)               # payload [0,100) -> table offset
        b.add(3, 29, 2)
        b.ld(4, 3, 0)                # dl1 hop fed by the miss
        b.slti(4, 4, 25)
        b.beq(4, 0, label)           # ~25% mispredict, fed by miss+dl1
        b.addi(16, 16, 1)
        b.label(label)
        # two independent arc gathers the branch gates
        for g in range(2):
            b.ld(5, 27, (2 * i + g) * WORD)
            b.add(5, 5, 28)
            b.ld(6, 5, 0)
            b.add(17, 17, 6)
    b.addi(27, 27, 2 * chunk * WORD)
    b.addi(20, 20, -1)
    b.bne(20, 0, "outer")
    b.halt()
    return Workload("mcf", make_mcf.__doc__.strip().splitlines()[0],
                    b.build(), mem.data,
                    mem.ranges("l1"), mem.ranges("l2"))


def make_perl(scale: float = 1.0, seed: int = 0) -> Workload:
    """Interpreter dispatch: indirect jumps on random opcodes, resident data.

    Shape targets: bmisp the largest (BTB-missing indirect branches),
    dl1 large, dmiss tiny, win small, healthy bw.
    """
    rng = random.Random(seed ^ 0x706572)
    mem = MemoryImage()
    iters = _iters(330, scale)
    case_count = 24
    table = mem.alloc(case_count, warmth="l1")
    selectors = mem.alloc(iters + 4, warmth="l1")
    # markov opcode stream: repeats keep the BTB right ~55% of the
    # time, like a real interpreter's skewed opcode mix
    sel_values, current = [], 0
    for _ in range(iters + 4):
        if rng.random() > 0.55:
            current = rng.randrange(case_count)
        sel_values.append(current * WORD)
    mem.fill(selectors, sel_values)
    chain = K.build_permutation_chain(mem, 512, rng)

    b = ProgramBuilder("perl")
    _load_address(b, 27, table)
    _load_address(b, 28, selectors)
    _load_address(b, 29, chain)
    b.addi(13, 0, 0)
    b.addi(24, 0, iters)

    def case_body(bb: ProgramBuilder, c: int) -> None:
        # each opcode runs a dl1 chain seeded at a case-specific node,
        # independent of other dispatches: the only cross-dispatch
        # serialization is the jr resolution itself (dl1+bmisp serial)
        bb.ld(2, 29, (c * 37 % 512) * WORD)
        for _ in range(2):
            bb.add(3, 29, 2)
            bb.ld(2, 3, 0)
        bb.add(16, 16, 2)
        K.emit_ilp_alu(bb, regs=[8, 9, 10], rounds=1)

    labels = K.emit_dispatch_table(b, table_reg=27, case_count=case_count,
                                   selector_base_reg=28, tag="p",
                                   case_body=case_body)
    b.halt()
    program = b.build()
    for i, label in enumerate(labels):
        mem.data[table + i * WORD] = program.label_pc(label)
    return Workload("perl", make_perl.__doc__.strip().splitlines()[0],
                    program, mem.data,
                    mem.ranges("l1"), mem.ranges("l2"))


# ----------------------------------------------------------------------
# The remaining ten workloads are MixSpec-driven; the knob values were
# tuned empirically against the Table 4a shape targets (see DESIGN.md).

from repro.workloads.mix import MixSpec, generate as _generate_mix

MIX_SPECS: Dict[str, MixSpec] = {
    "gzip": MixSpec(
        name="gzip",
        description="L1-resident compression loops: dl1 chains feeding "
                    "match/literal branches",
        iters=100,
        chase_count=2, chase_links=3, chase_branch=True, chase_threshold=88,
        gather_count=2, gather_kb=64, gather_warmth="l2",
        branch_count=1, branch_hi=8,
        alu_chain=14, ilp_rounds=4,
    ),
    "bzip": MixSpec(
        name="bzip",
        description="Sorting-style branches on gathered bytes over a "
                    "mid-size block",
        iters=95,
        chase_count=2, chase_links=3,
        gather_count=3, gather_kb=64, gather_branch=True, gather_hi=4,
        stream_count=4,
        alu_chain=12, ilp_rounds=1,
    ),
    "crafty": MixSpec(
        name="crafty",
        description="Bitboard search: small-table chases feeding branches, "
                    "wide ALU work",
        iters=95,
        chase_count=2, chase_links=2, chase_branch=True, chase_threshold=90,
        gather_count=1, gather_kb=64,
        branch_count=1, branch_hi=8,
        stream_count=1,
        alu_chain=8, ilp_rounds=4, store_count=2,
    ),
    "gcc": MixSpec(
        name="gcc",
        description="Compiler passes: branchy, missing, spread over many "
                    "functions",
        iters=7,
        functions=36, body_pad=30,
        chase_count=1, chase_links=1, chase_branch=True, chase_threshold=92,
        gather_count=1, gather_kb=512, gather_branch=True, gather_hi=16,
        stream_count=1,
        ilp_rounds=1,
    ),
    "gap": MixSpec(
        name="gap",
        description="Group-theory interpreter: streaming misses filling the "
                    "window, serial integer chains",
        iters=80,
        stream_count=10, stream_dep_alu=1,
        chase_count=1, chase_links=1,
        branch_count=1, branch_hi=2,
        alu_chain=30,
    ),
    "vortex": MixSpec(
        name="vortex",
        description="Object database: window-limited streams plus dl1 "
                    "chains, almost no mispredicts",
        iters=90,
        stream_count=3,
        chase_count=3, chase_links=2, chase_seed_warmth="l2",
        ilp_rounds=1,
    ),
    "parser": MixSpec(
        name="parser",
        description="Dictionary lookups: memory-missing gathers feeding "
                    "branches plus integer chains",
        iters=80,
        chase_count=2, chase_links=3,
        gather_count=2, gather_kb=1024, gather_warmth="l2",
        gather_branch=True, gather_hi=8,
        stream_count=1,
        alu_chain=18, ilp_rounds=1,
    ),
    "twolf": MixSpec(
        name="twolf",
        description="Placement annealing: netlist gathers with accept/"
                    "reject branches",
        iters=85,
        chase_count=1, chase_links=4,
        gather_count=3, gather_kb=512, gather_branch=True, gather_hi=16,
        stream_count=2,
        alu_chain=6, mul_count=1,
    ),
    "vpr": MixSpec(
        name="vpr",
        description="Routing: congestion-map gathers, branches and window "
                    "pressure",
        iters=85,
        chase_count=1, chase_links=4,
        gather_count=3, gather_kb=256, gather_branch=True, gather_hi=12,
        stream_count=3,
        alu_chain=6, mul_count=1, ilp_rounds=1,
    ),
    "eon": MixSpec(
        name="eon",
        description="Ray tracing: FP chains across a >32 KiB code footprint",
        iters=2,
        functions=56, body_pad=126,
        chase_count=1, chase_links=2, chase_branch=True, chase_threshold=75,
        fp_adds=22, fp_every=3, ilp_rounds=1,
    ),
}


def _mix_factory(name: str):
    def factory(scale: float = 1.0, seed: int = 0) -> Workload:
        return _generate_mix(MIX_SPECS[name], scale=scale, seed=seed)
    factory.__name__ = f"make_{name}"
    factory.__doc__ = MIX_SPECS[name].description
    return factory


make_gzip = _mix_factory("gzip")
make_bzip = _mix_factory("bzip")
make_crafty = _mix_factory("crafty")
make_gcc = _mix_factory("gcc")
make_gap = _mix_factory("gap")
make_vortex = _mix_factory("vortex")
make_parser = _mix_factory("parser")
make_twolf = _mix_factory("twolf")
make_vpr = _mix_factory("vpr")
make_eon = _mix_factory("eon")
