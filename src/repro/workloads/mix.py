"""The parametrised workload generator behind most of the suite.

A :class:`MixSpec` describes one loop iteration as counts of
*ingredients*; :func:`generate` assembles the program, its data image
and warmth declarations.  The ingredients are wired the way real
integer codes wire them -- loads feed branches, chases are serial
within an iteration but independent across iterations -- because those
couplings are what produce the paper's serial/parallel interaction
signs (e.g. dl1+bmisp serial requires branches *fed by* dl1-latency
loads, not branches merely near them).

Ingredient -> category map:

- ``chase_*``: seeded L1-resident pointer chases -- dl1 (serial
  load-use); with ``chase_branch`` the final payload feeds a branch
  (dl1+bmisp serial).
- ``gather_*``: random gathers into a big region -- dmiss; with
  ``gather_branch`` the value feeds a branch (bmisp+dmiss serial).
- ``stream_count``: line-striding loads into an L2-warm buffer --
  independent 12-cycle misses that fill the window (win, dmiss).
- ``branch_count``: branches on streamed random decisions -- bmisp.
- ``alu_chain``: a serial one-cycle-op chain -- shalu.
- ``ilp_rounds``: wide independent integer work -- bw.
- ``store_count``: store bursts -- bw (store-commit bandwidth).
- ``mul_count`` / ``fp_adds``: multi-cycle operations -- lgalu.
- ``functions`` / ``body_pad``: spread the body over many padded
  functions -- imiss once the footprint exceeds the 32 KiB L1I.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.isa.instructions import fp_reg
from repro.isa.program import ProgramBuilder
from repro.workloads import kernels as K
from repro.workloads.kernels import WORD, MemoryImage


@dataclass(frozen=True)
class MixSpec:
    """Per-iteration ingredient counts for one synthetic workload."""

    name: str
    description: str
    iters: int

    # dl1: seeded pointer chases, independent across iterations
    chase_count: int = 0
    chase_links: int = 3
    chase_branch: bool = False
    chase_threshold: int = 50    # payload in [0,100); min(t,100-t)% mispredict
    #: warmth of the seed array: "l1" makes chases pure dl1 chains;
    #: "l2" (or "cold") makes each chase *start* with a cache miss, so
    #: dmiss feeds dl1 serially (the object-traversal pattern)
    chase_seed_warmth: str = "l1"

    # dmiss: random gathers
    gather_count: int = 0
    gather_kb: int = 256
    gather_warmth: str = "l2"
    gather_branch: bool = False
    gather_hi: int = 2           # value range; P(taken) = 1 - 1/hi

    # win/dmiss: line-striding stream into an L2-warm buffer
    stream_count: int = 0
    stream_dep_alu: int = 0

    # bmisp: branches on streamed random decisions
    branch_count: int = 0
    branch_hi: int = 2
    branch_work: int = 2

    # shalu / bw / lgalu
    alu_chain: int = 0
    ilp_rounds: int = 0
    store_count: int = 0
    mul_count: int = 0
    fp_adds: int = 0
    #: with split bodies, only every k-th function gets the FP chain
    fp_every: int = 1

    # imiss: body spread over padded functions
    functions: int = 0
    body_pad: int = 0


def generate(spec: MixSpec, scale: float = 1.0, seed: int = 0):
    """Build the :class:`~repro.workloads.spec.Workload` for *spec*."""
    from repro.workloads.spec import Workload, _load_address

    # zlib.crc32, unlike hash(), is stable across processes -- workload
    # data must not depend on PYTHONHASHSEED
    rng = random.Random(seed ^ (zlib.crc32(spec.name.encode()) & 0xFFFFFF))
    mem = MemoryImage()
    iters = max(1, round(spec.iters * scale))

    # ---- data regions -------------------------------------------------
    # With a split body, every function consumes its own slice of each
    # per-iteration stream, so arrays are sized (and bases advanced) by
    # counts * bodies.
    bodies = max(1, spec.functions)
    chain_nodes = 256            # 2 words per node: 4 KiB, L1-resident
    chain = _build_payload_chain(mem, chain_nodes, rng)
    chase_seeds = None
    if spec.chase_count:
        per_iter = spec.chase_count * bodies
        # one seed per cache line when the seed array is miss-warm, so
        # every chase begins with its own fresh miss
        stride = K.WORDS_PER_LINE if spec.chase_seed_warmth != "l1" else 1
        chase_seeds = mem.alloc(per_iter * (iters + 1) * stride,
                                warmth=spec.chase_seed_warmth)
        mem.fill(chase_seeds, [rng.randrange(chain_nodes) * 2 * WORD
                               for _ in range(per_iter * (iters + 1) * stride)])
    gather_region = gather_idx = None
    if spec.gather_count:
        words = spec.gather_kb * 1024 // WORD
        gather_region = K.build_random_words(
            mem, words, rng, lo=0, hi=spec.gather_hi,
            warmth=spec.gather_warmth)
        gather_idx = K.build_index_array(
            mem, spec.gather_count * bodies * (iters + 1), words, rng,
            warmth="l1")
    stream = None
    if spec.stream_count:
        words = spec.stream_count * bodies * K.WORDS_PER_LINE * (iters + 1)
        stream = K.build_random_words(mem, words, rng, warmth="l2")
    decisions = None
    if spec.branch_count:
        decisions = K.build_random_words(
            mem, spec.branch_count * bodies * (iters + 1), rng, lo=0,
            hi=spec.branch_hi, warmth="l1")
    store_region = None
    if spec.store_count:
        store_region = mem.alloc(
            max(spec.store_count * bodies * (iters + 1), 64), warmth="l1")

    # register plan: r21 chain base, r22 seeds, r23 gather idx,
    # r24 gather region, r25 stream, r26 decisions, r27 stores
    b = ProgramBuilder(spec.name)
    _load_address(b, 21, chain)
    if chase_seeds is not None:
        _load_address(b, 22, chase_seeds)
    if gather_idx is not None:
        _load_address(b, 23, gather_idx)
        _load_address(b, 24, gather_region)
    if stream is not None:
        _load_address(b, 25, stream)
    if decisions is not None:
        _load_address(b, 26, decisions)
    if store_region is not None:
        _load_address(b, 27, store_region)
    b.addi(20, 0, iters)
    b.label("outer")

    if spec.functions:
        for f in range(spec.functions):
            b.call(f"fn_{f}")
    else:
        _emit_iteration(b, spec, "i", body_index=0)
    _advance_streams(b, spec, bodies)
    b.addi(20, 20, -1)
    b.bne(20, 0, "outer")
    b.halt()

    if spec.functions:
        for f in range(spec.functions):
            b.label(f"fn_{f}")
            _emit_iteration(b, spec, f"f{f}", body_index=f)
            _emit_pad(b, spec.body_pad)
            b.ret()

    return Workload(spec.name, spec.description, b.build(), mem.data,
                    mem.ranges("l1"), mem.ranges("l2"))


# ----------------------------------------------------------------------


def _build_payload_chain(mem: MemoryImage, nodes: int,
                         rng: random.Random) -> int:
    """A cyclic chain of 2-word nodes: [next offset, random payload]."""
    order = list(range(nodes))
    rng.shuffle(order)
    base = mem.alloc(nodes * 2, warmth="l1")
    for pos, idx in enumerate(order):
        nxt = order[(pos + 1) % nodes] * 2 * WORD
        mem.fill(base + idx * 2 * WORD, [nxt, rng.randrange(0, 100)])
    return base


def _emit_iteration(b: ProgramBuilder, spec: MixSpec, tag: str,
                    body_index: int = 0) -> None:
    """One iteration body (or one function body when split).

    *body_index* selects this body's slice of every streamed array so
    split bodies consume distinct data.
    """
    seed_stride = K.WORDS_PER_LINE if spec.chase_seed_warmth != "l1" else 1
    chase_base = body_index * spec.chase_count * seed_stride
    gather_base = body_index * spec.gather_count
    stream_base = body_index * spec.stream_count * K.WORDS_PER_LINE
    branch_base = body_index * spec.branch_count
    store_base = body_index * spec.store_count
    for c in range(spec.chase_count):
        # seed load: L1-resident, or a fresh miss when seeds are
        # line-strided through a colder region
        b.ld(2, 22, (chase_base + c * seed_stride) * WORD)
        for _ in range(spec.chase_links):
            b.add(3, 21, 2)
            b.ld(2, 3, 0)
        if spec.chase_branch:
            label = f"ch_{tag}_{c}"
            b.add(3, 21, 2)
            b.ld(4, 3, WORD)                 # payload, dl1-fed
            b.slti(4, 4, spec.chase_threshold)
            b.beq(4, 0, label)
            b.addi(16, 16, 1)
            b.label(label)
        else:
            b.add(16, 16, 2)

    for g in range(spec.gather_count):
        b.ld(4, 23, (gather_base + g) * WORD)
        b.add(4, 4, 24)
        b.ld(5, 4, 0)                        # the dmiss event
        if spec.gather_branch:
            label = f"gb_{tag}_{g}"
            b.bne(5, 0, label)               # bmisp fed by the miss
            b.addi(16, 16, 1)
            b.label(label)
        else:
            b.add(17, 17, 5)

    for i in range(spec.stream_count):
        b.ld(1, 25, (stream_base + i * K.WORDS_PER_LINE) * WORD)
        for _ in range(spec.stream_dep_alu):
            b.addi(1, 1, 1)
        b.add(17, 17, 1)

    for i in range(spec.branch_count):
        label = f"rb_{tag}_{i}"
        b.ld(2, 26, (branch_base + i) * WORD)
        b.bne(2, 0, label)
        for _ in range(spec.branch_work):
            b.addi(16, 16, 1)
        b.label(label)

    if spec.alu_chain:
        # Reset the chain head from r0: chains are local to one body,
        # independent across iterations.  This is what makes shalu and
        # the window *serially* interact (Table 4b): the in-window chain
        # serializes execution while the window serializes how many
        # chains can overlap -- removing either constraint dissolves
        # the same bottleneck.
        b.addi(18, 0, 1)
        K.emit_alu_chain(b, reg=18, length=spec.alu_chain)
    if spec.ilp_rounds:
        K.emit_ilp_alu(b, regs=[8, 9, 10, 11], rounds=spec.ilp_rounds)
    for s in range(spec.store_count):
        b.st(17, 27, (store_base + s) * WORD)
    for _ in range(spec.mul_count):
        b.mul(19, 19, 17)
    if spec.fp_adds and body_index % max(1, spec.fp_every) == 0:
        # a *local* serial FP chain: reseeded per body so it competes
        # with this body's other work instead of forming a cross-body
        # spine no idealization could expose
        f1, f2 = fp_reg(1), fp_reg(2)
        b.fcvt(f1, 17)
        b.fcvt(f2, 16)
        for _ in range(spec.fp_adds):
            b.fadd(f2, f2, f1)
        b.add(15, 15, f2)


def _advance_streams(b: ProgramBuilder, spec: MixSpec, bodies: int) -> None:
    """Advance every streamed region's base register once per iteration."""
    if spec.chase_count:
        stride = K.WORDS_PER_LINE if spec.chase_seed_warmth != "l1" else 1
        b.addi(22, 22, bodies * spec.chase_count * stride * WORD)
    if spec.gather_count:
        b.addi(23, 23, bodies * spec.gather_count * WORD)
    if spec.stream_count:
        b.addi(25, 25, bodies * spec.stream_count * K.WORDS_PER_LINE * WORD)
    if spec.branch_count:
        b.addi(26, 26, bodies * spec.branch_count * WORD)
    if spec.store_count:
        b.addi(27, 27, bodies * spec.store_count * WORD)


def _emit_pad(b: ProgramBuilder, pad: int) -> None:
    """Wide independent filler: inflates code footprint at high IPC.

    Every op writes from r0, so the filler carries no dependence chain
    at all -- it loads the fetch/issue bandwidth (and, through sheer
    footprint, the instruction cache) without adding shalu-chain cost.
    """
    regs = (5, 6, 8, 9, 10, 11)
    for i in range(pad):
        b.addi(regs[i % len(regs)], 0, i & 0x7FF)
