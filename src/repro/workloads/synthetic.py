"""Parametric random programs, for property-based tests and stress runs.

``random_program`` generates an arbitrary-but-valid TinyRISC program:
a loop whose body mixes ALU ops, loads/stores into a private region,
and data-dependent branches.  Hypothesis drives the parameters to
shake out simulator and graph invariants across the behaviour space.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.kernels import WORD, MemoryImage
from repro.workloads.spec import Workload, _load_address


def random_program(
    seed: int,
    body_insts: int = 40,
    iterations: int = 20,
    load_frac: float = 0.2,
    store_frac: float = 0.1,
    branch_frac: float = 0.1,
    region_words: int = 4096,
    name: Optional[str] = None,
) -> Workload:
    """A random-but-deterministic workload.

    The body draws each instruction's class from the given fractions
    (the remainder is ALU work, with an occasional multiply); all
    branches are forward and data-dependent, so control flow varies by
    seed without risking non-termination.
    """
    if load_frac + store_frac + branch_frac > 0.9:
        raise ValueError("fractions leave no room for ALU work")
    rng = random.Random(seed)
    mem = MemoryImage()
    region = mem.alloc(region_words)
    for i in range(0, region_words, max(1, region_words // 256)):
        mem.data[region + i * WORD] = rng.randrange(0, 2)

    b = ProgramBuilder(name or f"random-{seed}")
    _load_address(b, 26, region)
    b.addi(20, 0, iterations)
    b.label("top")
    pending_label = None
    for i in range(body_insts):
        if pending_label is not None and rng.random() < 0.5:
            b.label(pending_label)
            pending_label = None
        r = rng.random()
        scratch = rng.randrange(1, 12)
        if r < load_frac:
            offset = rng.randrange(region_words) * WORD
            b.ld(scratch, 26, offset)
        elif r < load_frac + store_frac:
            offset = rng.randrange(region_words) * WORD
            b.st(scratch, 26, offset)
        elif r < load_frac + store_frac + branch_frac and pending_label is None:
            pending_label = f"skip_{i}"
            b.slti(13, scratch, rng.randrange(1, 4))
            b.beq(13, 0, pending_label)
        elif rng.random() < 0.08:
            b.mul(scratch, scratch, 14)
        else:
            other = rng.randrange(1, 12)
            b.add(scratch, scratch, other)
    if pending_label is not None:
        b.label(pending_label)
    b.addi(20, 20, -1)
    b.bne(20, 0, "top")
    b.halt()
    return Workload(b.name, "random synthetic workload", b.build(), mem.data)
