"""Parametric random programs, for property-based tests and stress runs.

``random_program`` generates an arbitrary-but-valid TinyRISC program:
a loop whose body mixes ALU ops, loads/stores into a private region,
and data-dependent branches.  Hypothesis drives the parameters to
shake out simulator and graph invariants across the behaviour space.

``fuzz_program`` is the heavier cousin behind the simulator
differential harness (``tests/test_sim_differential.py``): per seed it
assembles a loop from randomly drawn stress blocks -- FP chains with
divides, strided loads crossing lines and pages, back-to-back
cold-miss bursts that pile up outstanding fills (MSHR pressure),
store runs, prefetch-then-load pairs, data-dependent forward
branches, call/return pairs and a jump-table indirect dispatch -- over
hot (L1-resident), warm (L2-resident) and cold data regions, so every
event-attribution path of the simulator core is reachable from some
seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.kernels import WORD, MemoryImage
from repro.workloads.spec import Workload, _load_address


def random_program(
    seed: int,
    body_insts: int = 40,
    iterations: int = 20,
    load_frac: float = 0.2,
    store_frac: float = 0.1,
    branch_frac: float = 0.1,
    region_words: int = 4096,
    name: Optional[str] = None,
) -> Workload:
    """A random-but-deterministic workload.

    The body draws each instruction's class from the given fractions
    (the remainder is ALU work, with an occasional multiply); all
    branches are forward and data-dependent, so control flow varies by
    seed without risking non-termination.
    """
    if load_frac + store_frac + branch_frac > 0.9:
        raise ValueError("fractions leave no room for ALU work")
    rng = random.Random(seed)
    mem = MemoryImage()
    region = mem.alloc(region_words)
    for i in range(0, region_words, max(1, region_words // 256)):
        mem.data[region + i * WORD] = rng.randrange(0, 2)

    b = ProgramBuilder(name or f"random-{seed}")
    _load_address(b, 26, region)
    b.addi(20, 0, iterations)
    b.label("top")
    pending_label = None
    for i in range(body_insts):
        if pending_label is not None and rng.random() < 0.5:
            b.label(pending_label)
            pending_label = None
        r = rng.random()
        scratch = rng.randrange(1, 12)
        if r < load_frac:
            offset = rng.randrange(region_words) * WORD
            b.ld(scratch, 26, offset)
        elif r < load_frac + store_frac:
            offset = rng.randrange(region_words) * WORD
            b.st(scratch, 26, offset)
        elif r < load_frac + store_frac + branch_frac and pending_label is None:
            pending_label = f"skip_{i}"
            b.slti(13, scratch, rng.randrange(1, 4))
            b.beq(13, 0, pending_label)
        elif rng.random() < 0.08:
            b.mul(scratch, scratch, 14)
        else:
            other = rng.randrange(1, 12)
            b.add(scratch, scratch, other)
    if pending_label is not None:
        b.label(pending_label)
    b.addi(20, 20, -1)
    b.bne(20, 0, "top")
    b.halt()
    return Workload(b.name, "random synthetic workload", b.build(), mem.data)


#: Load stride choices for ``fuzz_program``, in words: consecutive,
#: intra-line, one line (64 B), and one page (4 KiB) per step.
_FUZZ_STRIDES = (1, 4, 8, 512)


def fuzz_program(
    seed: int,
    body_blocks: int = 10,
    iterations: int = 6,
    name: Optional[str] = None,
) -> Workload:
    """A seeded stress workload for the simulator differential harness.

    Deterministic per *seed*.  The main loop body is *body_blocks*
    randomly drawn stress blocks (see the module docstring); helper
    functions and the indirect-dispatch cases live after ``halt`` and
    are only reached through ``call``/``jr``.  Regions carry mixed
    warmth so the warm-cache installation paths are exercised too.
    """
    rng = random.Random(seed)
    mem = MemoryImage()
    hot = mem.alloc(256, warmth="l1")
    warm = mem.alloc(2048, warmth="l2")
    cold_words = rng.choice((4096, 16384, 65536))
    cold = mem.alloc(cold_words, warmth="cold")
    for i in range(0, 256, 5):
        mem.data[hot + i * WORD] = rng.randrange(0, 4)
    regions = ((25, 256), (26, 2048), (27, cold_words))

    n_funcs = rng.randrange(0, 3)
    dispatch_cases = rng.choice((0, 2, 4))
    table = mem.alloc(dispatch_cases or 1, warmth="l1")

    b = ProgramBuilder(name or f"fuzz-{seed}")
    _load_address(b, 25, hot)
    _load_address(b, 26, warm)
    _load_address(b, 27, cold)
    _load_address(b, 28, table)
    b.addi(20, 0, iterations)
    b.addi(14, 0, max(dispatch_cases - 1, 0))   # dispatch selector mask
    b.fcvt(16, 20)                              # seed the FP registers
    b.fcvt(17, 14)
    b.label("top")

    def block_alu(i: int) -> None:
        for _ in range(rng.randrange(2, 7)):
            d, s = rng.randrange(1, 12), rng.randrange(1, 12)
            op = rng.choice((b.add, b.sub, b.and_, b.or_, b.xor))
            op(d, d, s)
        if rng.random() < 0.5:
            b.mul(rng.randrange(1, 12), rng.randrange(1, 12), 14)

    def block_fp(i: int) -> None:
        for _ in range(rng.randrange(2, 5)):
            d, s = rng.randrange(16, 20), rng.randrange(16, 20)
            op = rng.choice((b.fadd, b.fsub, b.fmul))
            op(d, d, s)
        if rng.random() < 0.3:
            b.fdiv(rng.randrange(16, 20), 16, 17)

    def block_stride(i: int) -> None:
        base, words = rng.choice(regions)
        stride = rng.choice(_FUZZ_STRIDES)
        start = rng.randrange(words)
        dependent = rng.random() < 0.4
        for k in range(rng.randrange(3, 9)):
            offset = ((start + k * stride) % words) * WORD
            b.ld(4, base, offset)
            if dependent:
                b.add(5, 5, 4)

    def block_burst(i: int) -> None:
        # back-to-back independent loads of distinct cold lines: the
        # fills overlap, so a finite MSHR pool throttles them
        for _ in range(rng.randrange(4, 11)):
            offset = rng.randrange(cold_words) * WORD
            b.ld(rng.randrange(1, 12), 27, offset)

    def block_stores(i: int) -> None:
        base, words = rng.choice(regions[:2])
        for _ in range(rng.randrange(2, 7)):
            b.st(rng.randrange(1, 12), base, rng.randrange(words) * WORD)

    def block_prefetch(i: int) -> None:
        offset = rng.randrange(cold_words) * WORD
        b.prefetch(27, offset)
        for _ in range(rng.randrange(1, 4)):
            b.add(6, 6, 7)
        b.ld(rng.randrange(1, 12), 27, offset)  # may hit the fill in flight

    def block_branch(i: int) -> None:
        label = f"fz_skip_{i}"
        b.slti(13, rng.randrange(1, 12), rng.randrange(1, 4))
        rng.choice((b.beq, b.bne, b.blt, b.bge))(13, 0, label)
        for _ in range(rng.randrange(1, 4)):
            b.add(rng.randrange(1, 12), rng.randrange(1, 12), 14)
        b.label(label)

    def block_call(i: int) -> None:
        b.call(f"fz_fn_{rng.randrange(n_funcs)}")

    def block_dispatch(i: int) -> None:
        # jump-table indirect branch whose target varies with the loop
        # counter, so the BTB keeps mispredicting the jr
        cont = f"fz_cont_{i}"
        b.and_(6, 20, 14)
        b.sll(6, 6, 3)                          # case index -> byte offset
        b.add(6, 6, 28)
        b.ld(7, 6, 0)
        b.jr(7)
        for c in range(dispatch_cases):
            b.label(f"fz_case_{i}_{c}")
            b.addi(16, 16, c + 1)
            b.j(cont)
        b.label(cont)

    blocks = [block_alu, block_fp, block_stride, block_burst,
              block_stores, block_prefetch, block_branch]
    if n_funcs:
        blocks.append(block_call)
    if dispatch_cases:
        blocks.append(block_dispatch)
    dispatch_blocks = []
    for i in range(body_blocks):
        block = rng.choice(blocks)
        if block is block_dispatch:
            dispatch_blocks.append(i)
        block(i)
    b.addi(20, 20, -1)
    b.bne(20, 0, "top")
    b.halt()
    for f in range(n_funcs):
        b.label(f"fz_fn_{f}")
        for _ in range(rng.randrange(1, 4)):
            b.add(rng.randrange(1, 12), rng.randrange(1, 12), 14)
        if rng.random() < 0.5:
            b.ld(4, 25, rng.randrange(256) * WORD)
        b.ret()
    program = b.build()
    # resolve the dispatch-case labels into the jump table; every
    # dispatch block shares the one table, so later blocks overwrite
    # earlier rows -- the targets only need to be *valid*, not distinct
    for i in dispatch_blocks:
        for c in range(dispatch_cases):
            mem.data[table + c * WORD] = program.label_pc(f"fz_case_{i}_{c}")
    return Workload(b.name, "fuzz stress workload", program, mem.data,
                    warm_l1_ranges=mem.ranges("l1"),
                    warm_l2_ranges=mem.ranges("l2"))
