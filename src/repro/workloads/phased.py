"""A two-phase workload for dynamic-reconfiguration experiments.

Phase A is a strictly serial pointer chase: the window and the wide
front end buy nothing (their costs are ~zero), so an adaptive machine
can power them down.  Phase B switches to wide independent miss
streams: suddenly the window is the whole game and must come back.
A controller that reads per-segment cost measurements (the paper's
"dynamic optimizers could save power by intelligently reconfiguring
hardware structures") gets both calls right; a static machine pays for
the big structures in phase A or the small ones in phase B.
"""

from __future__ import annotations

import random

from repro.isa.program import ProgramBuilder
from repro.workloads import kernels as K
from repro.workloads.kernels import WORD, MemoryImage
from repro.workloads.spec import Workload, _load_address


def make_phased_workload(phase_a_iters: int = 60, phase_b_iters: int = 60,
                         seed: int = 0) -> Workload:
    """Serial-chase phase followed by a parallel-stream phase.

    The returned workload carries ``phase_boundary``: the dynamic
    instruction index where phase B begins (for tests and plots).
    """
    rng = random.Random(seed ^ 0x706861)
    mem = MemoryImage()
    chain = K.build_permutation_chain(mem, 512, rng)
    words = 10 * K.WORDS_PER_LINE * (phase_b_iters + 1)
    stream = K.build_random_words(mem, words, rng, warmth="l2")

    b = ProgramBuilder("phased")
    _load_address(b, 21, chain)
    _load_address(b, 25, stream)
    b.addi(13, 0, 0)

    # ---- phase A: one long serial chase per iteration ----
    b.addi(20, 0, phase_a_iters)
    b.label("phase_a")
    for __ in range(10):
        b.add(3, 21, 13)
        b.ld(13, 3, 0)
    b.addi(20, 20, -1)
    b.bne(20, 0, "phase_a")

    # ---- phase B: ten independent line-striding misses per iteration ----
    b.addi(20, 0, phase_b_iters)
    b.label("phase_b")
    for i in range(10):
        b.ld(1, 25, i * K.WORDS_PER_LINE * WORD)
        b.add(17, 17, 1)
    b.addi(25, 25, 10 * K.WORDS_PER_LINE * WORD)
    b.addi(20, 20, -1)
    b.bne(20, 0, "phase_b")
    b.halt()

    program = b.build()
    workload = Workload("phased", "serial chase then parallel streams",
                        program, mem.data,
                        mem.ranges("l1"), mem.ranges("l2"))
    # consumers locate the dynamic boundary as the first instruction
    # fetched from this PC
    workload.phase_b_pc = program.label_pc("phase_b")
    return workload


def phase_boundary(workload: Workload, trace) -> int:
    """Dynamic index of the first phase-B instruction in *trace*."""
    for inst in trace:
        if inst.pc == workload.phase_b_pc:
            return inst.seq
    raise ValueError("trace never reached phase B")
