"""The observation collector: spans, counters, gauges, histograms.

This is the software analogue of the paper's monitoring hardware
(Section 5.1): a small, bounded-cost recorder that watches the
*analysis pipeline itself* run.  A :class:`Collector` accumulates

- **spans** -- timed regions entered with a context manager, nested by
  wall-clock containment (per thread), exportable as Chrome
  trace-event JSON (:mod:`repro.obs.tracefile`);
- **counters** -- monotonically increasing named event counts;
- **gauges** -- last-written named values;
- **histograms** -- count/total/min/max summaries of observed values;
- **notes** -- short named strings (e.g. the native-kernel status).

Nothing here imports anything outside the standard library, and no
instrumented module pays more than a module-level ``None`` check when
collection is off (see :mod:`repro.obs` for the no-op fast path and
:mod:`repro.obs.overhead` for the quantified bill).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Collector", "Span", "NOOP_SPAN", "SpanRecord"]

#: One finished span: (name, ts_us, dur_us, tid, args).
SpanRecord = Tuple[str, float, float, int, Dict[str, Any]]


class Span:
    """A timed region, used as a context manager.

    Arguments given at creation (and any added later with :meth:`set`)
    are recorded as the span's ``args`` in the trace file, so a span
    can carry results computed inside the region::

        with collector.span("graph.build", insns=n) as sp:
            graph = build(...)
            sp.set(edges=graph.num_edges)
    """

    __slots__ = ("_collector", "name", "args", "_start")

    def __init__(self, collector: "Collector", name: str,
                 args: Dict[str, Any]) -> None:
        self._collector = collector
        self.name = name
        self.args = args
        self._start = 0

    def set(self, **args: Any) -> None:
        """Attach (or overwrite) argument values on the span."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter_ns()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._collector._finish_span(self, self._start, end)


class _NoopSpan:
    """The shared do-nothing span handed out while collection is off."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Singleton no-op span: entering/exiting it costs two empty calls.
NOOP_SPAN = _NoopSpan()


class Collector:
    """Accumulates spans, counters, gauges, histograms and notes.

    All mutation paths are guarded by one lock so engines fanning work
    across threads cannot corrupt the aggregates; worker *processes*
    (the parallel engine) get their own interpreter and therefore their
    own -- unobserved -- collector, exactly like per-core hardware
    counters that are not cross-core coherent.
    """

    def __init__(self) -> None:
        self._epoch_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> [count, total, min, max]
        self.histograms: Dict[str, List[float]] = {}
        self.notes: Dict[str, str] = {}
        self.api_calls = 0  # how many instrumentation hits were recorded

    # ---- recording ---------------------------------------------------

    def span(self, name: str, args: Dict[str, Any]) -> Span:
        """A new (not yet entered) span attached to this collector."""
        return Span(self, name, args)

    def _finish_span(self, span: Span, start_ns: int, end_ns: int) -> None:
        ts = (start_ns - self._epoch_ns) / 1000.0
        dur = (end_ns - start_ns) / 1000.0
        with self._lock:
            self.api_calls += 1
            self.spans.append(
                (span.name, ts, dur, threading.get_ident(), span.args))

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter *name* by *n*."""
        with self._lock:
            self.api_calls += 1
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self.api_calls += 1
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold *value* into histogram *name*."""
        with self._lock:
            self.api_calls += 1
            h = self.histograms.get(name)
            if h is None:
                self.histograms[name] = [1, value, value, value]
            else:
                h[0] += 1
                h[1] += value
                if value < h[2]:
                    h[2] = value
                if value > h[3]:
                    h[3] = value

    def note(self, name: str, text: str) -> None:
        """Record a short named string (statuses, reasons)."""
        with self._lock:
            self.api_calls += 1
            self.notes[name] = str(text)

    # ---- reading -----------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter *name* (0 when never incremented)."""
        return self.counters.get(name, 0)

    def span_names(self) -> List[str]:
        """Distinct span names, in first-seen order."""
        seen: Dict[str, None] = {}
        for name, *_ in self.spans:
            seen.setdefault(name)
        return list(seen)

    def histogram_mean(self, name: str) -> Optional[float]:
        """Mean of histogram *name*, or None when empty."""
        h = self.histograms.get(name)
        if not h or not h[0]:
            return None
        return h[1] / h[0]

    def elapsed_us(self) -> float:
        """Microseconds since this collector was created."""
        return (time.perf_counter_ns() - self._epoch_ns) / 1000.0
