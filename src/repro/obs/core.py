"""The observation collector: spans, counters, gauges, histograms.

This is the software analogue of the paper's monitoring hardware
(Section 5.1): a small, bounded-cost recorder that watches the
*analysis pipeline itself* run.  A :class:`Collector` accumulates

- **spans** -- timed regions entered with a context manager, nested by
  an explicitly propagated active-span stack (per thread), each
  carrying a causal identity (span id, parent span id, pid/tid),
  exportable as Chrome trace-event JSON (:mod:`repro.obs.tracefile`)
  and lowerable into the paper's dependence-graph cost model
  (:mod:`repro.obs.selfprof`);
- **counters** -- monotonically increasing named event counts;
- **gauges** -- last-written named values;
- **histograms** -- count/total/min/max summaries of observed values;
- **notes** -- short named strings (e.g. the native-kernel status).

Nothing here imports anything outside the standard library, and no
instrumented module pays more than a module-level ``None`` check when
collection is off (see :mod:`repro.obs` for the no-op fast path and
:mod:`repro.obs.overhead` for the quantified bill).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Collector", "Span", "NOOP_SPAN", "SpanRecord"]

#: One finished span:
#: ``(name, ts_us, dur_us, tid, args, sid, parent_sid, pid)``.
#: ``sid`` is a collector-unique positive span id; ``parent_sid`` is the
#: sid of the span that was active on the same thread when this one was
#: entered (0 = top level).  Timestamps are microseconds since the
#: collector's epoch, taken from ``perf_counter_ns`` (CLOCK_MONOTONIC on
#: Linux, so epochs from different processes on the same host share a
#: time base and :meth:`Collector.absorb` can rebase between them).
SpanRecord = Tuple[str, float, float, int, Dict[str, Any], int, int, int]


class Span:
    """A timed region, used as a context manager.

    Arguments given at creation (and any added later with :meth:`set`)
    are recorded as the span's ``args`` in the trace file, so a span
    can carry results computed inside the region::

        with collector.span("graph.build", insns=n) as sp:
            graph = build(...)
            sp.set(edges=graph.num_edges)

    Entering the span pushes its id onto the owning thread's active-span
    stack (:attr:`sid`/:attr:`parent_sid`), so nesting is recorded as an
    explicit parent edge rather than inferred from containment.
    """

    __slots__ = ("_collector", "name", "args", "_start", "sid",
                 "parent_sid")

    def __init__(self, collector: "Collector", name: str,
                 args: Dict[str, Any]) -> None:
        self._collector = collector
        self.name = name
        self.args = args
        self._start = 0
        self.sid = 0
        self.parent_sid = 0

    def set(self, **args: Any) -> None:
        """Attach (or overwrite) argument values on the span."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self.sid, self.parent_sid = self._collector._enter_span()
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter_ns()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._collector._finish_span(self, self._start, end)


class _NoopSpan:
    """The shared do-nothing span handed out while collection is off."""

    __slots__ = ()

    #: mirrors :attr:`Span.sid` so callers may read it unconditionally
    sid = 0
    parent_sid = 0

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Singleton no-op span: entering/exiting it costs two empty calls.
NOOP_SPAN = _NoopSpan()


class Collector:
    """Accumulates spans, counters, gauges, histograms and notes.

    All mutation paths are guarded by one lock so engines fanning work
    across threads cannot corrupt the aggregates.  Worker *processes*
    (the parallel pipeline) get their own interpreter and therefore
    their own collector; the pipeline ships each worker's records back
    through the pool result (:meth:`export_spans`) and the parent
    merges them -- rebased onto its own epoch, reparented under the
    pool span -- with :meth:`absorb`, like cross-core counter
    aggregation done in software.
    """

    def __init__(self) -> None:
        self._epoch_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._next_sid = itertools.count(1)
        self._tls = threading.local()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> [count, total, min, max]
        self.histograms: Dict[str, List[float]] = {}
        self.notes: Dict[str, str] = {}
        self.api_calls = 0  # how many instrumentation hits were recorded
        #: finished-span listeners (``repro serve`` streams progress
        #: lines from these); empty for everyone else, so the only cost
        #: on the normal path is one truthiness check per span
        self._listeners: List[Any] = []

    @property
    def pid(self) -> int:
        """The process id this collector records in (export metadata)."""
        return self._pid

    # ---- recording ---------------------------------------------------

    def span(self, name: str, args: Dict[str, Any]) -> Span:
        """A new (not yet entered) span attached to this collector."""
        return Span(self, name, args)

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # ---- request tracing ---------------------------------------------

    def set_trace(self, trace_id: Optional[str]) -> None:
        """Tag every span finished on the calling thread with *trace_id*.

        The serve daemon mints one trace id per submitted job and sets
        it on the worker thread for the job's duration, so the job's
        spans can later be sliced out of the shared collector
        (:meth:`take_trace`) regardless of what other jobs recorded in
        between.  ``None`` clears the tag.
        """
        self._tls.trace = trace_id

    def current_trace(self) -> Optional[str]:
        """The calling thread's trace id, or None."""
        return getattr(self._tls, "trace", None)

    def take_trace(self, trace_id: str,
                   remove: bool = True) -> List[SpanRecord]:
        """Every span tagged *trace_id*, in completion order.

        With *remove* (the default) the spans are also dropped from the
        collector in the same locked step -- the serve daemon calls this
        once per finished job, which is what keeps a long-lived
        daemon's span list bounded by its in-flight work rather than
        its uptime.
        """
        with self._lock:
            mine = [rec for rec in self.spans
                    if rec[4].get("trace") == trace_id]
            if remove and mine:
                self.spans = [rec for rec in self.spans
                              if rec[4].get("trace") != trace_id]
        return mine

    def _enter_span(self) -> Tuple[int, int]:
        """Allocate a span id, push it, return ``(sid, parent_sid)``."""
        stack = self._stack()
        sid = next(self._next_sid)  # atomic under the GIL
        parent = stack[-1] if stack else 0
        stack.append(sid)
        return sid, parent

    def _finish_span(self, span: Span, start_ns: int, end_ns: int) -> None:
        stack = self._stack()
        if stack:
            if stack[-1] == span.sid:
                stack.pop()
            else:  # misnested exit: drop it wherever it sits
                try:
                    stack.remove(span.sid)
                except ValueError:
                    pass
        trace = getattr(self._tls, "trace", None)
        if trace is not None:
            span.args.setdefault("trace", trace)
        ts = (start_ns - self._epoch_ns) / 1000.0
        dur = (end_ns - start_ns) / 1000.0
        record = (span.name, ts, dur, threading.get_ident(), span.args,
                  span.sid, span.parent_sid, self._pid)
        with self._lock:
            self.api_calls += 1
            self.spans.append(record)
        if self._listeners:  # notify outside the lock: listeners may
            for listener in list(self._listeners):  # touch the collector
                try:
                    listener(record)
                except Exception:  # pragma: no cover - listener bug
                    pass

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter *name* by *n*."""
        with self._lock:
            self.api_calls += 1
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self.api_calls += 1
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold *value* into histogram *name*."""
        with self._lock:
            self.api_calls += 1
            h = self.histograms.get(name)
            if h is None:
                self.histograms[name] = [1, value, value, value]
            else:
                h[0] += 1
                h[1] += value
                if value < h[2]:
                    h[2] = value
                if value > h[3]:
                    h[3] = value

    def note(self, name: str, text: str) -> None:
        """Record a short named string (statuses, reasons)."""
        with self._lock:
            self.api_calls += 1
            self.notes[name] = str(text)

    # ---- finished-span listeners -------------------------------------

    def add_listener(self, listener: Any) -> None:
        """Call *listener(record)* after every span finishes.

        *record* is the :data:`SpanRecord` tuple just appended.  The
        serve daemon registers one per in-flight job (filtering by the
        job's worker thread id) to stream progress lines; listeners run
        outside the collector lock and must not raise.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        """Detach a listener added with :meth:`add_listener`."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    # ---- cross-process stitching -------------------------------------

    def export_spans(self, drain: bool = False) -> Dict[str, Any]:
        """A picklable snapshot of everything this collector recorded.

        The export carries the collector's monotonic epoch and pid so a
        collector in another process can rebase the timestamps onto its
        own epoch with :meth:`absorb`.  With ``drain=True`` the
        collector is emptied in the same locked step, so repeated tasks
        in a long-lived pool worker each ship only their own records.
        """
        with self._lock:
            export = {
                "epoch_ns": self._epoch_ns,
                "pid": self._pid,
                "spans": list(self.spans),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {k: list(v)
                               for k, v in self.histograms.items()},
                "notes": dict(self.notes),
            }
            if drain:
                self.spans.clear()
                self.counters.clear()
                self.gauges.clear()
                self.histograms.clear()
                self.notes.clear()
        return export

    def absorb(self, export: Dict[str, Any], parent_sid: int = 0) -> int:
        """Merge an :meth:`export_spans` snapshot into this collector.

        Span timestamps are rebased from the exporting collector's
        monotonic epoch onto this one's (both clocks are
        CLOCK_MONOTONIC, so same-host processes share a time base) and
        span ids are remapped into this collector's id space.  Spans
        that were top level in the exporter are reparented under
        *parent_sid* -- the pipeline passes the pool span's id here, so
        worker spans nest under the pool in the merged forest.
        Counters are summed, gauges last-write-wins, histograms folded,
        notes updated.  When the absorbing thread carries a trace id
        (:meth:`set_trace`), absorbed spans inherit it -- worker
        processes know nothing about the request that spawned them, so
        the merge point is where a serve job's identity reaches its
        pool spans.  Returns the number of spans absorbed.
        """
        records = export.get("spans", ())
        shift_us = (export["epoch_ns"] - self._epoch_ns) / 1000.0
        trace = getattr(self._tls, "trace", None)
        # records are in completion order (children finish before their
        # parents), so build the full sid remap before appending any
        sid_map = {rec[5]: next(self._next_sid) for rec in records}
        with self._lock:
            for name, ts, dur, tid, args, sid, parent, pid in records:
                self.api_calls += 1
                if trace is not None:
                    args.setdefault("trace", trace)
                self.spans.append(
                    (name, ts + shift_us, dur, tid, args, sid_map[sid],
                     sid_map.get(parent, parent_sid), pid))
            for name, n in export.get("counters", {}).items():
                self.api_calls += 1
                self.counters[name] = self.counters.get(name, 0) + n
            for name, value in export.get("gauges", {}).items():
                self.api_calls += 1
                self.gauges[name] = value
            for name, h in export.get("histograms", {}).items():
                self.api_calls += 1
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = list(h)
                else:
                    mine[0] += h[0]
                    mine[1] += h[1]
                    if h[2] < mine[2]:
                        mine[2] = h[2]
                    if h[3] > mine[3]:
                        mine[3] = h[3]
            for name, text in export.get("notes", {}).items():
                self.api_calls += 1
                self.notes[name] = str(text)
        return len(records)

    # ---- reading -----------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter *name* (0 when never incremented)."""
        return self.counters.get(name, 0)

    def span_names(self) -> List[str]:
        """Distinct span names, in first-seen order."""
        seen: Dict[str, None] = {}
        for name, *_ in self.spans:
            seen.setdefault(name)
        return list(seen)

    def histogram_mean(self, name: str) -> Optional[float]:
        """Mean of histogram *name*, or None when empty."""
        h = self.histograms.get(name)
        if not h or not h[0]:
            return None
        return h[1] / h[0]

    def elapsed_us(self) -> float:
        """Microseconds since this collector was created."""
        return (time.perf_counter_ns() - self._epoch_ns) / 1000.0
