"""Prometheus-style text exposition of obs registries.

The serve daemon's ``GET /metrics`` endpoint renders every counter,
gauge and histogram a :class:`~repro.obs.core.Collector` accumulated
in the Prometheus text format (version 0.0.4), so a stock scraper --
or plain ``curl`` -- can watch a fleet of daemons without any new
dependency on either side.

Labels ride inside the metric *name* using the same brace syntax the
exposition format uses (``serve.request_ms{code=200,route=/healthz}``):
:func:`encode_labels` builds such a name with deterministic key order,
:func:`parse_labeled` splits it back apart, and the renderer escapes
label values per the exposition spec (``\\`` -> ``\\\\``, ``"`` ->
``\\"``, newline -> ``\\n``).  Keeping labels in the name means the
:class:`Collector` itself needs no schema change -- a labeled series is
just another histogram/counter entry, merged across processes by the
existing :meth:`~repro.obs.core.Collector.absorb` machinery.

Dots in repro metric names become underscores (``serve.job.done`` ->
``repro_serve_job_done_total``); every exposed metric is prefixed
``repro_`` so a shared Prometheus never collides with other jobs.

Histograms here are the collector's count/total/min/max summaries, so
they render as a Prometheus *summary* (``_count``/``_sum``) plus
``_min``/``_max`` gauges rather than as bucketed histograms.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple, Union

from repro.obs.core import Collector

__all__ = [
    "encode_labels",
    "parse_labeled",
    "escape_label_value",
    "metric_name",
    "render_prometheus",
]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def encode_labels(name: str, **labels: Union[str, int, float]) -> str:
    """*name* with *labels* attached, deterministically ordered.

    ``encode_labels("serve.request_ms", route="/healthz", code=200)``
    -> ``serve.request_ms{code=200,route=/healthz}``.  Values are kept
    raw here; escaping happens at render time so the collector stores
    human-readable names.
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_labeled(name: str) -> Tuple[str, Dict[str, str]]:
    """Split an :func:`encode_labels` name into ``(base, labels)``."""
    if not name.endswith("}") or "{" not in name:
        return name, {}
    base, _, inner = name[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        if part:
            key, _, value = part.partition("=")
            labels[key] = value
    return base, labels


def escape_label_value(value: str) -> str:
    """A label value escaped per the exposition format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def metric_name(name: str) -> str:
    """The exposition name of a repro metric (``repro_`` + sanitized)."""
    return "repro_" + _NAME_BAD.sub("_", name)


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(str(labels[key]))}"'
                     for key in sorted(labels))
    return f"{{{inner}}}"


def _merged(collectors: Iterable[Collector]):
    """Counters summed, gauges last-write-wins, histograms folded."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, List[float]] = {}
    for collector in collectors:
        if collector is None:
            continue
        with collector._lock:
            snap_counters = dict(collector.counters)
            snap_gauges = dict(collector.gauges)
            snap_hists = {k: list(v)
                          for k, v in collector.histograms.items()}
        for name, value in snap_counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snap_gauges)
        for name, h in snap_hists.items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = list(h)
            else:
                mine[0] += h[0]
                mine[1] += h[1]
                mine[2] = min(mine[2], h[2])
                mine[3] = max(mine[3], h[3])
    return counters, gauges, histograms


def render_prometheus(collectors: Union[Collector,
                                        Iterable[Collector]]) -> str:
    """The full exposition document of one or more collectors.

    Series sharing a base metric (labeled variants) are grouped under
    one ``# TYPE`` line; everything is rendered in sorted order so the
    output is deterministic -- the golden test pins it byte for byte.
    """
    if isinstance(collectors, Collector):
        collectors = (collectors,)
    counters, gauges, histograms = _merged(collectors)
    out: List[str] = []

    def emit(table: Dict[str, float], kind: str, suffix: str = "") -> None:
        grouped: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
        for name in sorted(table):
            base, labels = parse_labeled(name)
            grouped.setdefault(base, []).append((labels, table[name]))
        for base in sorted(grouped):
            exposed = metric_name(base) + suffix
            out.append(f"# TYPE {exposed} {kind}")
            for labels, value in grouped[base]:
                out.append(f"{exposed}{_label_str(labels)} "
                           f"{_fmt_value(value)}")

    emit(counters, "counter", suffix="_total")
    emit(gauges, "gauge")

    grouped: Dict[str, List[Tuple[Dict[str, str], List[float]]]] = {}
    for name in sorted(histograms):
        base, labels = parse_labeled(name)
        grouped.setdefault(base, []).append((labels, histograms[name]))
    for base in sorted(grouped):
        exposed = metric_name(base)
        out.append(f"# TYPE {exposed} summary")
        for labels, (count, total, lo, hi) in grouped[base]:
            label_str = _label_str(labels)
            out.append(f"{exposed}_count{label_str} "
                       f"{_fmt_value(float(count))}")
            out.append(f"{exposed}_sum{label_str} "
                       f"{_fmt_value(float(total))}")
        for bound, index in (("min", 2), ("max", 3)):
            out.append(f"# TYPE {exposed}_{bound} gauge")
            for labels, h in grouped[base]:
                out.append(f"{exposed}_{bound}{_label_str(labels)} "
                           f"{_fmt_value(float(h[index]))}")
    return "\n".join(out) + ("\n" if out else "")
