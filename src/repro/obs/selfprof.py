"""Self-profiling: the paper's icost algebra over the tool's own spans.

The paper's thesis (Sections 2-3) is that flat time accounting lies
about parallel systems: a phase's measured duration says nothing about
what shortening it would buy, because other work may run in parallel
with it (``icost > 0``) or be forced to serialize around it
(``icost < 0``).  Our analysis pipeline is now such a system -- pool
workers emit graph shards while the parent waits, cache stores overlap
analysis, and the flat ``--metrics`` phase totals cannot say which
interaction bounds wall time.

This module closes the loop by *dogfooding* the cost model: the
collector's finished span forest (every span carries sid/parent/pid/tid
since the causal-identity change in :mod:`repro.obs.core`) is lowered
into the existing :class:`~repro.graph.model.DependenceGraph` and
measured with the existing :class:`~repro.graph.cost.GraphCostAnalyzer`
-- no second scheduler model, the same machinery that prices DL1 misses
prices our own pool spawns.

Lowering
--------
Each (pid, tid) timeline is swept into non-overlapping **segments**
attributed to the innermost enclosing span (interior gaps become
``other`` segments), so the segments of a timeline tile its extent.
One segment = one graph "instruction"; its E->P edge carries the
segment duration in nanoseconds, tagged as a
:class:`~repro.core.categories.Category` ``DL1`` per-instruction
latency -- the one idealization the
:class:`~repro.graph.idealize.GraphIdealizer` applies as pure latency
zeroing with no structural edit, which is exactly "this work takes no
time".  Zero-latency edges encode the schedule: P->E chains along each
timeline, a fork edge from the pool span's wait segment to each worker
timeline, and a join edge from each worker's last segment to the pool's
collect segment (the pool span is split at the last worker's finish
into *wait*, which costs nothing by itself, and *collect*).  A
synthetic ``spawn`` segment covers each worker's lag between pool start
and its first recorded span -- process spawn plus payload pickling,
precisely the overhead the auto-pool heuristic
(:data:`~repro.pipeline.runner.POOL_MIN_INSTS_PER_JOB`) exists to
dodge.

With the main timeline tiling the measured run, the graph's critical
path equals the wall time, ``cost(category)`` is the wall time saved by
idealizing that category away, and the rows of
:func:`self_profile` -- per-category costs, pairwise icosts with the
paper's serial/parallel/independent classification, and one
higher-order remainder -- sum *exactly* to the modeled wall time
(``cost`` of everything): a parallelism-aware breakdown accounting for
100% of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.categories import Category, EventSelection
from repro.core.icost import (
    CachingCostProvider,
    Interaction,
    classify_interaction,
    icost_pair,
)
from repro.core.serialize import SerializableResult, register_serializable
from repro.graph.model import DependenceGraph, EdgeKind, NodeKind, node_id

__all__ = [
    "SelfProfile",
    "SelfProfileRow",
    "build_span_graph",
    "category_of",
    "render_self_profile",
    "self_profile",
]

#: Ordered (category, span-name prefix) rules; first match wins.
#: Anything unmatched -- umbrella spans, interior gaps -- is ``other``.
CATEGORY_RULES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("simulate", ("pipeline.simulate", "sim.", "workload.",
                  "session.sweep")),
    ("cache", ("pipeline.cache.",)),
    ("stitch", ("pipeline.stitch",)),
    ("build", ("pipeline.build", "pipeline.pool_build",
               "pipeline.window_emit", "graph.build")),
    ("analyze", ("pipeline.analyze", "pipeline.pool_analyze",
                 "pipeline.window_analyze", "engine.", "breakdown.",
                 "icost.", "profiler.", "multisim.", "sensitivity.")),
)

#: Pool umbrella spans: their worker timelines fork from / join into
#: them, and their own time splits into wait + collect at the join.
POOL_SPAN_NAMES = ("pipeline.pool_build", "pipeline.pool_analyze")

#: Relative epsilon for serial/parallel classification: interactions
#: within this fraction of the modeled total are timing noise, not
#: schedule structure (floor: 1 microsecond).
EPSILON_FRACTION = 1e-3


def category_of(name: str) -> str:
    """The self-profile category of span *name* (``other`` = none)."""
    for category, prefixes in CATEGORY_RULES:
        for prefix in prefixes:
            if name.startswith(prefix):
                return category
    return "other"


# ----------------------------------------------------------------------
# Span forest -> timeline segments
# ----------------------------------------------------------------------


@dataclass
class _SpanNode:
    sid: int
    parent: int
    name: str
    pid: int
    tid: int
    start: int  # ns
    end: int    # ns


@dataclass
class _Segment:
    """One schedule slot: a maximal run of time owned by one span."""

    start: int
    end: int
    category: Optional[str]  # None = untagged (pool wait)
    name: str
    owner_sid: int
    keep: bool = False       # keep even at zero duration (join target)
    seq: int = -1            # assigned after the global sort

    @property
    def dur(self) -> int:
        return self.end - self.start


def _subtract(start: int, end: int,
              holes: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """``[start, end)`` minus *holes* (any order, may overlap)."""
    pieces = []
    cursor = start
    for h0, h1 in sorted(holes):
        h0, h1 = max(h0, start), min(h1, end)
        if h1 <= cursor:
            continue
        if h0 > cursor:
            pieces.append((cursor, h0))
        cursor = max(cursor, h1)
    if cursor < end:
        pieces.append((cursor, end))
    return pieces


def _timeline_segments(nodes: List[_SpanNode]) -> List[_Segment]:
    """Sweep one (pid, tid) timeline into innermost-owner segments."""
    sids = {n.sid for n in nodes}
    children: Dict[int, List[_SpanNode]] = {}
    for n in nodes:
        if n.parent in sids:
            children.setdefault(n.parent, []).append(n)
    segments: List[_Segment] = []
    top = sorted((n for n in nodes if n.parent not in sids),
                 key=lambda n: (n.start, -n.end))
    for n in sorted(nodes, key=lambda n: (n.start, -n.end)):
        holes = [(c.start, c.end) for c in children.get(n.sid, ())]
        for s, e in _subtract(n.start, n.end, holes):
            segments.append(_Segment(s, e, category_of(n.name), n.name,
                                     n.sid))
    # interior gaps between top-level spans: time the thread spent
    # outside any span still elapsed on this timeline
    if top:
        holes = [(n.start, n.end) for n in top]
        for s, e in _subtract(top[0].start, max(n.end for n in top),
                              holes):
            segments.append(_Segment(s, e, "other", "(gap)", 0))
    segments.sort(key=lambda s: (s.start, s.end))
    return segments


def _split_at(segments: List[_Segment], cut: int) -> None:
    """Split any segment strictly straddling *cut* in place."""
    for i, seg in enumerate(segments):
        if seg.start < cut < seg.end:
            left = _Segment(seg.start, cut, seg.category, seg.name,
                            seg.owner_sid)
            seg.start = cut
            segments.insert(i, left)
            return


# ----------------------------------------------------------------------
# Segments -> dependence graph
# ----------------------------------------------------------------------


def build_span_graph(collector):
    """Lower *collector*'s span forest into a dependence graph.

    Returns ``(graph, groups, segments)`` where *groups* maps category
    name to the list of instruction seqs carrying that category's
    duration tags, and *segments* is the globally ordered segment list
    (diagnostics / tests).  Raises ``ValueError`` on a collector with
    no spans.
    """
    nodes: List[_SpanNode] = []
    for name, ts, dur, tid, _args, sid, parent, pid in collector.spans:
        start = round(ts * 1000.0)
        nodes.append(_SpanNode(sid, parent, name, pid, tid, start,
                               start + round(dur * 1000.0)))
    if not nodes:
        raise ValueError("self-profile needs a collector with spans")
    pids = {n.pid for n in nodes}
    root_pid = collector.pid if collector.pid in pids else \
        min(nodes, key=lambda n: (n.start, -n.end)).pid

    by_timeline: Dict[Tuple[int, int], List[_SpanNode]] = {}
    for n in nodes:
        by_timeline.setdefault((n.pid, n.tid), []).append(n)
    timelines = {key: _timeline_segments(tl_nodes)
                 for key, tl_nodes in by_timeline.items()}

    pools = {n.sid: n for n in nodes if n.name in POOL_SPAN_NAMES}
    fork_edges: List[Tuple[_Segment, _Segment]] = []  # (src, dst)
    join_edges: List[Tuple[_Segment, _Segment]] = []
    for sid, pool in pools.items():
        pool_tl = timelines[(pool.pid, pool.tid)]
        workers = []  # anchored worker timelines, as segment lists
        for key, tl_nodes in by_timeline.items():
            if key == (pool.pid, pool.tid):
                continue
            if any(n.parent == sid for n in tl_nodes):
                segs = [s for s in timelines[key]
                        if pool.start <= s.start < pool.end]
                if segs:
                    workers.append((key, segs))
        if not workers:
            continue
        tjoin = min(pool.end,
                    max(s.end for _, segs in workers for s in segs))
        _split_at(pool_tl, tjoin)
        collect = None
        for seg in pool_tl:
            if seg.owner_sid == sid and seg.end <= tjoin:
                # waiting on the workers: holds no cost of its own, the
                # fork/join edges carry the workers' time instead
                seg.category = None
                seg.name = pool.name + " (wait)"
            if collect is None and seg.start >= tjoin:
                collect = seg
        if collect is None:  # pool time fully consumed before tjoin
            collect = _Segment(tjoin, tjoin, category_of(pool.name),
                               pool.name + " (collect)", sid, keep=True)
            pool_tl.append(collect)
            pool_tl.sort(key=lambda s: (s.start, s.end))
        fork_src = next((s for s in pool_tl if s.start >= pool.start),
                        None)
        for key, segs in workers:
            first = segs[0]
            if first.start > pool.start:
                spawn = _Segment(pool.start, first.start, "spawn",
                                 pool.name + " (spawn)", 0)
                tl = timelines[key]
                at = next(i for i, s in enumerate(tl) if s is first)
                tl.insert(at, spawn)
                first = spawn
            if fork_src is not None and fork_src is not first:
                fork_edges.append((fork_src, first))
            join_edges.append((segs[-1], collect))

    # global instruction order: by start time, root process first on
    # ties (fork targets must come after their source; join sources
    # always start strictly before the collect segment)
    keyed = []
    for (pid, tid), segs in timelines.items():
        for idx, seg in enumerate(segs):
            if seg.dur > 0 or seg.keep:
                keyed.append(((seg.start, pid != root_pid, pid, tid,
                               idx), seg))
    keyed.sort(key=lambda kv: kv[0])
    ordered = [seg for _, seg in keyed]
    for seq, seg in enumerate(ordered):
        seg.seq = seq

    groups: Dict[str, List[int]] = {}
    dl1 = int(Category.DL1.index)
    edges: List[Tuple[int, int, EdgeKind, int, int, int]] = []
    for seg in ordered:
        if seg.category is not None and seg.dur > 0:
            groups.setdefault(seg.category, []).append(seg.seq)
            edges.append((node_id(seg.seq, NodeKind.E),
                          node_id(seg.seq, NodeKind.P),
                          EdgeKind.EP, seg.dur, dl1, seg.dur))
        else:
            # untagged, zero-latency slot: a pool *wait* holds no time
            # of its own -- the fork/join path through the workers is
            # what stretches the schedule across it
            edges.append((node_id(seg.seq, NodeKind.E),
                          node_id(seg.seq, NodeKind.P),
                          EdgeKind.EP, 0, -1, 0))
    for segs in timelines.values():
        live = [s for s in segs if s.seq >= 0]
        for a, b in zip(live, live[1:]):
            edges.append((node_id(a.seq, NodeKind.P),
                          node_id(b.seq, NodeKind.E),
                          EdgeKind.PR, 0, -1, 0))
    for src, dst in fork_edges:
        if 0 <= src.seq < dst.seq:
            edges.append((node_id(src.seq, NodeKind.E),
                          node_id(dst.seq, NodeKind.E),
                          EdgeKind.DR, 0, -1, 0))
    for src, dst in join_edges:
        if 0 <= src.seq < dst.seq:
            edges.append((node_id(src.seq, NodeKind.P),
                          node_id(dst.seq, NodeKind.E),
                          EdgeKind.PC, 0, -1, 0))

    graph = DependenceGraph(len(ordered))
    for src, dst, kind, lat, cat1, val1 in sorted(
            edges, key=lambda e: (e[1], e[0], int(e[2]))):
        graph.add_edge(src, dst, kind, lat, cat1, val1)
    graph.finalize()
    return graph, groups, ordered


# ----------------------------------------------------------------------
# Profile result
# ----------------------------------------------------------------------


@register_serializable
@dataclass(frozen=True)
class SelfProfileRow(SerializableResult):
    """One breakdown row: a category cost, a pairwise interaction, or
    the higher-order remainder."""

    label: str
    kind: str              # "cost" | "interaction" | "residual"
    ms: float
    percent: float
    classification: str = ""  # serial/parallel/independent (interactions)


@register_serializable
@dataclass(frozen=True)
class SelfProfile(SerializableResult):
    """A parallelism-aware wall-time breakdown of one observed run."""

    total_ms: float             # modeled schedule length (critical path)
    wall_ms: float              # measured wall clock around the run
    coverage: float             # total_ms / wall_ms
    categories: Tuple[str, ...]
    rows: Tuple[SelfProfileRow, ...]
    spans: int
    segments: int
    processes: int

    def cost_rows(self) -> Tuple[SelfProfileRow, ...]:
        """The per-category ``cost(S)`` rows."""
        return tuple(r for r in self.rows if r.kind == "cost")

    def interaction_rows(self) -> Tuple[SelfProfileRow, ...]:
        """The pairwise ``icost({a, b})`` rows."""
        return tuple(r for r in self.rows if r.kind == "interaction")

    def classified(self, classification: str) -> Tuple[SelfProfileRow, ...]:
        """Interaction rows with the given classification."""
        return tuple(r for r in self.interaction_rows()
                     if r.classification == classification)

    def payload(self) -> Dict[str, Any]:
        """The JSON shape persisted in manifests and bench summaries."""
        return {
            "total_ms": round(self.total_ms, 3),
            "wall_ms": round(self.wall_ms, 3),
            "coverage": round(self.coverage, 4),
            "categories": list(self.categories),
            "spans": self.spans,
            "segments": self.segments,
            "processes": self.processes,
            "rows": [{
                "label": r.label,
                "kind": r.kind,
                "ms": round(r.ms, 3),
                "percent": round(r.percent, 2),
                "classification": r.classification,
            } for r in self.rows],
        }


def self_profile(collector, wall_ms: Optional[float] = None,
                 engine: str = "batched") -> SelfProfile:
    """Run the paper's cost/icost algebra over *collector*'s spans.

    *wall_ms* is the externally measured wall clock of the observed
    region (defaults to the span extent).  The returned rows --
    ``cost(category)`` per category, ``icost({a, b})`` per category
    pair, plus one higher-order remainder -- sum exactly to
    :attr:`SelfProfile.total_ms`, the modeled critical path.
    """
    from repro.graph.cost import GraphCostAnalyzer

    graph, groups, segments = build_span_graph(collector)
    extent_ms = (max(s.end for s in segments)
                 - min(s.start for s in segments)) / 1e6 if segments else 0.0
    if wall_ms is None:
        wall_ms = extent_ms
    analyzer = GraphCostAnalyzer(graph, engine=engine)
    try:
        provider = CachingCostProvider(analyzer)
        selections = {
            category: EventSelection(Category.DL1, frozenset(seqs),
                                     name=f"self.{category}")
            for category, seqs in groups.items()}
        categories = tuple(sorted(selections))
        total_ns = analyzer.total
        epsilon = max(1_000.0, total_ns * EPSILON_FRACTION)
        rows: List[SelfProfileRow] = []

        def pct(ns: float) -> float:
            return 100.0 * ns / total_ns if total_ns else 0.0

        costs: Dict[str, float] = {}
        for category in categories:
            costs[category] = provider.cost([selections[category]])
            rows.append(SelfProfileRow(
                label=category, kind="cost", ms=costs[category] / 1e6,
                percent=pct(costs[category])))
        pair_total = 0.0
        for a, b in combinations(categories, 2):
            value = icost_pair(provider, selections[a], selections[b])
            pair_total += value
            kind = classify_interaction(value, epsilon=epsilon)
            rows.append(SelfProfileRow(
                label=f"{a}+{b}", kind="interaction", ms=value / 1e6,
                percent=pct(value), classification=kind.value))
        union_cost = provider.cost(
            [selections[c] for c in categories]) if categories else 0.0
        residual = union_cost - sum(costs.values()) - pair_total
        rows.append(SelfProfileRow(
            label="higher-order", kind="residual", ms=residual / 1e6,
            percent=pct(residual)))
    finally:
        analyzer.close()

    rows.sort(key=lambda r: ({"cost": 0, "interaction": 1,
                              "residual": 2}[r.kind], -abs(r.ms)))
    processes = len({rec[7] for rec in collector.spans})
    total_ms = total_ns / 1e6
    return SelfProfile(
        total_ms=total_ms, wall_ms=float(wall_ms),
        coverage=total_ms / wall_ms if wall_ms else 0.0,
        categories=categories, rows=tuple(rows),
        spans=len(collector.spans), segments=len(segments),
        processes=processes)


def render_self_profile(profile: SelfProfile) -> str:
    """The self-profile as an aligned text table."""
    lines = [
        "self-profile: icost over the tool's own span schedule",
        f"  modeled schedule : {profile.total_ms:10.3f} ms  "
        f"({profile.segments} segments, {profile.spans} spans, "
        f"{profile.processes} process(es))",
        f"  measured wall    : {profile.wall_ms:10.3f} ms  "
        f"({100.0 * profile.coverage:.1f}% accounted)",
        "",
        "  category cost(S) -- wall time saved by idealizing S away",
    ]
    for row in profile.cost_rows():
        lines.append(f"    {row.label:<18} {row.ms:10.3f} ms "
                     f"{row.percent:6.1f}%")
    interactions = profile.interaction_rows()
    if interactions:
        lines.append("")
        lines.append("  pairwise icost({a,b}) -- parallel > 0, "
                     "serial < 0")
        for row in interactions:
            lines.append(f"    {row.label:<18} {row.ms:+10.3f} ms "
                         f"{row.percent:+6.1f}%  {row.classification}")
    residual = next(r for r in profile.rows if r.kind == "residual")
    lines.append("")
    lines.append(f"    {'higher-order':<18} {residual.ms:+10.3f} ms "
                 f"{residual.percent:+6.1f}%")
    lines.append("")
    lines.append("  rows sum to the modeled schedule exactly "
                 "(docs/OBSERVABILITY.md)")
    return "\n".join(lines)
