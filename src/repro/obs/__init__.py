"""repro.obs: structured tracing and metrics for the analysis pipeline.

The paper's thesis is that you cannot tune what you cannot measure;
this package applies it to the reproduction's own machinery.  Every
hot layer (workload generation, simulation, graph building, the cost
engines, the icost cache, breakdowns, the shotgun profiler) calls into
this module, and by default **every call is a no-op** -- a module-level
``None`` check -- whose aggregate cost is bounded by the overhead
budget test (:mod:`repro.obs.overhead`).

Enable collection to get:

- **spans** (``with obs.span("graph.build", insns=n):``) exported as
  Chrome trace-event JSON that https://ui.perfetto.dev loads directly;
- **counters / gauges / histograms / notes**
  (``obs.count("engine.batched.sweep.full")``,
  ``obs.gauge("engine.pool.workers", 8)``,
  ``obs.observe("engine.batch_size", len(keys))``,
  ``obs.note("engine.native_kernel.status", reason)``);
- a human-readable summary via
  :func:`repro.obs.metrics.render_metrics_table`.

Typical library use::

    from repro import obs

    collector = obs.enable()
    try:
        ...                       # any analysis
    finally:
        obs.disable()
    obs.write_trace(collector, "trace.json")
    print(obs.render_metrics_table(collector))

The CLI wires this up behind global ``--trace FILE``, ``--metrics``
and ``-v/--log-level`` flags; see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import logging
from typing import Any, Optional, Union

from repro.obs.core import NOOP_SPAN, Collector, Span
from repro.obs.expo import encode_labels, render_prometheus
from repro.obs.metrics import render_metrics_table
from repro.obs import tracefile

__all__ = [
    "Collector",
    "Span",
    "enable",
    "disable",
    "enabled",
    "collector",
    "span",
    "count",
    "gauge",
    "observe",
    "note",
    "write_trace",
    "encode_labels",
    "render_prometheus",
    "render_metrics_table",
    "get_logger",
    "setup_logging",
]

#: The active collector, or None while observation is off.  Module
#: state (not a class) so the disabled fast path is one global load.
_active: Optional[Collector] = None


def enable(new: Optional[Collector] = None) -> Collector:
    """Start collecting (into *new* or a fresh collector) and return it."""
    global _active
    _active = new if new is not None else Collector()
    return _active


def disable() -> Optional[Collector]:
    """Stop collecting; returns the collector that was active, if any."""
    global _active
    previous, _active = _active, None
    return previous


def enabled() -> bool:
    """Whether a collector is currently active."""
    return _active is not None


def collector() -> Optional[Collector]:
    """The active collector, or None."""
    return _active


# ---- recording fast paths -------------------------------------------
# Each function body is the documented no-op contract: one load of the
# module global, one None test, return.  Keep them free of any other
# work -- the overhead budget test bills exactly this path.


def span(name: str, **args: Any):
    """A context manager timing the enclosed region (no-op when off)."""
    c = _active
    if c is None:
        return NOOP_SPAN
    return c.span(name, args)


def count(name: str, n: float = 1) -> None:
    """Increment counter *name* (no-op when off)."""
    c = _active
    if c is not None:
        c.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge *name* (no-op when off)."""
    c = _active
    if c is not None:
        c.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Fold *value* into histogram *name* (no-op when off)."""
    c = _active
    if c is not None:
        c.observe(name, value)


def note(name: str, text: str) -> None:
    """Record a short named string (no-op when off)."""
    c = _active
    if c is not None:
        c.note(name, text)


# ---- export ----------------------------------------------------------


def write_trace(source: Union[Collector, None], dest) -> None:
    """Write *source* (default: the active collector) as trace JSON."""
    c = source if source is not None else _active
    if c is None:
        raise RuntimeError("no collector to export (obs was never enabled)")
    tracefile.write(c, dest)


# ---- logging ---------------------------------------------------------

_LOG_ROOT = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """The pipeline logger (``repro`` or a dotted child of it)."""
    return logging.getLogger(f"{_LOG_ROOT}.{name}" if name else _LOG_ROOT)


def setup_logging(level: Union[int, str] = logging.WARNING) -> logging.Logger:
    """Point the ``repro`` logger at stderr with *level*; idempotent."""
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logger = logging.getLogger(_LOG_ROOT)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)
    return logger
