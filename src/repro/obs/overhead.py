"""Cost model for the instrumentation itself.

:mod:`repro.profiler.overhead` bills the paper's monitoring hardware
(sample bytes, buffer-drain interrupts, estimated slowdown); this
module bills the software observability layer the same way.  The
disabled fast path of every ``obs`` call is a module-level ``None``
check plus a function call, so its total cost over a run is simply

    calls_made x per_call_seconds

where ``calls_made`` can be counted exactly by running once with a
live collector (its ``api_calls``), and ``per_call_seconds`` is
measured empirically on the disabled path.  The overhead budget test
asserts the resulting bill stays under a small fraction of the run.
"""

from __future__ import annotations

import time
import timeit
from dataclasses import dataclass

__all__ = ["ObsOverheadEstimate", "measure_noop_call_cost",
           "estimate_overhead"]


@dataclass(frozen=True)
class ObsOverheadEstimate:
    """The instrumentation bill for one analysed run."""

    calls: int
    per_call_seconds: float
    run_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.calls * self.per_call_seconds

    @property
    def overhead_fraction(self) -> float:
        """Estimated slowdown fraction from disabled obs call sites."""
        if self.run_seconds <= 0:
            return 0.0
        return self.total_seconds / self.run_seconds

    def summary(self) -> str:
        """One-line human-readable bill."""
        return (f"{self.calls} obs calls x "
                f"{self.per_call_seconds * 1e9:.0f} ns "
                f"= {self.total_seconds * 1e3:.3f} ms, "
                f"~{self.overhead_fraction:.2%} of the run")


def measure_noop_call_cost(iterations: int = 200_000,
                           repeats: int = 3) -> float:
    """Seconds per disabled obs call (count + span, averaged).

    Measures the worst of the common call shapes: a counter bump and a
    span entered/exited with one keyword argument.  Collection must be
    off (the default); the caller's collector state is untouched.
    Returns the best of *repeats* to shed scheduler noise, as
    ``timeit`` recommends.
    """
    from repro import obs

    if obs.enabled():
        raise RuntimeError("no-op cost is only meaningful while disabled")

    def body():
        obs.count("overhead.probe")
        with obs.span("overhead.probe", k=1):
            pass

    best = min(timeit.repeat(body, number=iterations, repeat=repeats))
    # body() makes two obs calls per iteration
    return best / (2 * iterations)


def estimate_overhead(calls: int, run_seconds: float,
                      per_call_seconds: float = None) -> ObsOverheadEstimate:
    """Bill *calls* disabled obs call sites against a *run_seconds* run."""
    if per_call_seconds is None:
        per_call_seconds = measure_noop_call_cost()
    return ObsOverheadEstimate(calls=calls,
                               per_call_seconds=per_call_seconds,
                               run_seconds=run_seconds)


def time_run(fn) -> float:
    """Wall-clock one callable (helper for overhead tests)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
