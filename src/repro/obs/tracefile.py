"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

The format is the Trace Event Format's ``traceEvents`` array of
complete events (``"ph": "X"``) with microsecond timestamps, which
both https://ui.perfetto.dev and chrome://tracing load directly.
Counters are appended as one ``"ph": "C"`` event each so they show up
as counter tracks; gauges, histogram summaries and notes travel in the
process metadata where Perfetto's info panel displays them.
"""

from __future__ import annotations

import json
from typing import IO, Union

from repro.obs.core import Collector

__all__ = ["records_to_events", "trace_events", "dumps", "dumps_records",
           "write"]


def records_to_events(records, root_pid: int,
                      process_name: str =
                      "repro-icost analysis pipeline") -> list:
    """Chrome trace events for a list of span records.

    Spans absorbed from pipeline pool workers keep their real pid
    (:meth:`Collector.absorb` rebases their clocks, not their
    identities), so each worker shows up as its own named process track
    in Perfetto with the nesting the worker recorded.  The serve
    daemon's per-job trace endpoint feeds this the slice of one
    request's spans (:meth:`Collector.take_trace`).
    """
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": root_pid,
        "tid": 0,
        "args": {"name": process_name},
    }]
    seen_pids = {root_pid}
    for name, ts, dur, tid, args, _sid, _parent, pid in records:
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro-icost pool worker {pid}"},
            })
        event = {
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": round(ts, 3),
            "dur": round(dur, 3),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        events.append(event)
    return events


def trace_events(collector: Collector) -> list:
    """The ``traceEvents`` list for *collector*'s recorded activity."""
    root_pid = collector.pid
    events = records_to_events(collector.spans, root_pid)
    end = collector.elapsed_us()
    for name, value in sorted(collector.counters.items()):
        events.append({
            "name": name,
            "ph": "C",
            "ts": round(end, 3),
            "pid": root_pid,
            "tid": 0,
            "args": {"value": value},
        })
    return events


def dumps(collector: Collector) -> str:
    """The complete trace file as a JSON string."""
    meta = {
        "gauges": collector.gauges,
        "notes": collector.notes,
        "histograms": {
            name: {"count": h[0], "total": h[1], "min": h[2], "max": h[3]}
            for name, h in collector.histograms.items()
        },
    }
    doc = {
        "traceEvents": trace_events(collector),
        "displayTimeUnit": "ms",
        "otherData": meta,
    }
    return json.dumps(doc, default=str)


def dumps_records(records, root_pid: int,
                  other: Union[dict, None] = None,
                  process_name: str = "repro-serve job") -> str:
    """A standalone trace file for a slice of span records.

    *other* travels in ``otherData`` (the serve trace endpoint puts the
    job id, analysis and trace id there so a downloaded slice is
    self-describing).
    """
    doc = {
        "traceEvents": records_to_events(records, root_pid,
                                         process_name=process_name),
        "displayTimeUnit": "ms",
        "otherData": other or {},
    }
    return json.dumps(doc, default=str)


def write(collector: Collector, dest: Union[str, IO[str]]) -> None:
    """Write the trace to a path or an open text file."""
    text = dumps(collector)
    if hasattr(dest, "write"):
        dest.write(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text)
