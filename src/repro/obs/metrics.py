"""Human-readable metrics summary (the ``--metrics`` table).

Renders everything a :class:`~repro.obs.core.Collector` accumulated --
counters, gauges, histograms, notes, per-span time totals -- plus a
short derived header answering the questions the instrumentation was
built for: what fraction of cost queries hit the cache, how many
measurements ran as full sweeps vs incremental worklist relaxations,
and whether the native C kernel is actually in use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.core import Collector

__all__ = ["render_metrics_table", "derived_summary"]


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return f"{int(value)}"


def derived_summary(collector: Collector) -> List[str]:
    """The derived headline lines (cache hit rate, sweep mix, kernel)."""
    lines: List[str] = []
    hits = collector.counter("icost.cache.hit")
    misses = collector.counter("icost.cache.miss")
    if hits or misses:
        rate = hits / (hits + misses)
        lines.append(f"cost-query cache hit rate : {rate:.1%} "
                     f"({_fmt(hits)} hit / {_fmt(misses)} miss)")
    full = (collector.counter("engine.batched.sweep.full")
            + collector.counter("engine.naive.sweep"))
    worklist = collector.counter("engine.batched.worklist")
    reused = collector.counter("engine.batched.reuse")
    if full or worklist or reused:
        lines.append(f"cp measurements           : {_fmt(full)} full sweep, "
                     f"{_fmt(worklist)} worklist, {_fmt(reused)} reused")
    bails = collector.counter("engine.batched.worklist.bail")
    if bails:
        lines.append(f"worklist cascade bails    : {_fmt(bails)}")
    status = collector.notes.get("engine.native_kernel.status")
    if status is not None:
        lines.append(f"native C kernel           : {status}")
    lines.extend(_pipeline_summary(collector))
    return lines


def _pipeline_summary(collector: Collector) -> List[str]:
    """Derived pipeline lines: cache warmth, hit rate, shard timing."""
    lines: List[str] = []
    state = collector.notes.get("pipeline.cache.state")
    art_hits = art_misses = 0.0
    for kind in ("sim", "graph", "meta", "cycles"):
        art_hits += collector.counter(f"pipeline.cache.{kind}.hit")
        art_misses += collector.counter(f"pipeline.cache.{kind}.miss")
    if state is None and (art_hits or art_misses):
        # paths that use the cache without the full pipeline (e.g.
        # sensitivity sweeps) derive warmth from the counters
        state = "warm" if not art_misses else \
            ("cold" if not art_hits else "mixed")
    if state is not None or art_hits or art_misses:
        rate = art_hits / (art_hits + art_misses) \
            if (art_hits or art_misses) else 0.0
        lines.append(f"artifact cache            : {state or 'off'} "
                     f"({rate:.0%} hit rate, {_fmt(art_hits)} hit / "
                     f"{_fmt(art_misses)} miss)")
    built = collector.counter("pipeline.window.built")
    hist = collector.histograms.get("pipeline.window_ms")
    if built and hist:
        count, total, lo, hi = hist
        mean = total / count if count else 0.0
        windows = collector.gauges.get("pipeline.windows", built)
        jobs = collector.gauges.get("pipeline.jobs", 1)
        lines.append(f"pipeline shards           : {_fmt(built)} window(s) "
                     f"built ({_fmt(windows)} configured, "
                     f"{_fmt(jobs)} job(s)), "
                     f"{mean:.1f} ms/window (min {lo:.1f}, max {hi:.1f})")
    util = collector.gauges.get("pipeline.shard_utilization")
    if util is not None:
        lines.append(f"shard utilization         : {util:.0%}")
    fallback = collector.counter("pipeline.fallback_local")
    if fallback:
        lines.append(f"pipeline pool fallbacks   : {_fmt(fallback)} "
                     f"(ran serially in-process)")
    evictions = collector.counter("cache.evictions")
    quarantined = collector.counter("cache.quarantined")
    if evictions or quarantined:
        cache_bytes = collector.gauges.get("cache.bytes")
        size = (f", {cache_bytes / 1e6:.1f} MB resident"
                if cache_bytes is not None else "")
        lines.append(f"artifact cache pressure   : {_fmt(evictions)} "
                     f"evicted, {_fmt(quarantined)} quarantined{size}")
    served = collector.counter("serve.job.done")
    failed = collector.counter("serve.job.failed")
    rejected = collector.counter("serve.request.rejected")
    if served or failed or rejected:
        coalesced = collector.counter("serve.job.coalesced")
        lines.append(f"serve jobs                : {_fmt(served)} done, "
                     f"{_fmt(failed)} failed, {_fmt(rejected)} "
                     f"rejected (429), {_fmt(coalesced)} coalesced")
    lines.extend(_serve_latency_summary(collector))
    index_scanned = collector.counter("ledger.index.scan_bytes")
    index_reads = collector.counter("ledger.page.lines_read")
    if index_scanned or index_reads:
        lines.append(f"ledger index              : {_fmt(index_scanned)} "
                     f"byte(s) scanned, {_fmt(index_reads)} "
                     f"line(s) paged in")
    return lines


def _serve_latency_summary(collector: Collector) -> List[str]:
    """Aggregate the labeled per-route request histograms into one line."""
    from repro.obs.expo import parse_labeled

    count = total = 0.0
    worst = None
    for name, h in collector.histograms.items():
        base, _labels = parse_labeled(name)
        if base != "serve.request_ms":
            continue
        count += h[0]
        total += h[1]
        worst = h[3] if worst is None else max(worst, h[3])
    if not count:
        return []
    return [f"serve request latency     : {_fmt(count)} request(s), "
            f"{total / count:.1f} ms mean, {worst:.1f} ms max"]


def _span_totals(collector: Collector):
    totals = {}
    for name, _ts, dur, *_rest in collector.spans:
        count, time_us = totals.get(name, (0, 0.0))
        totals[name] = (count + 1, time_us + dur)
    return totals


def render_metrics_table(collector: Collector,
                         title: Optional[str] = "pipeline metrics") -> str:
    """The full ``--metrics`` table as a string."""
    out: List[str] = []
    if title:
        out.append(f"== {title} ==")
    out.extend(derived_summary(collector))

    totals = _span_totals(collector)
    if totals:
        out.append("")
        out.append(f"{'span':<32}{'count':>7}{'total ms':>10}")
        for name, (count, time_us) in sorted(
                totals.items(), key=lambda kv: -kv[1][1]):
            out.append(f"{name:<32}{count:>7}{time_us / 1000.0:>10.2f}")

    if collector.counters:
        out.append("")
        out.append(f"{'counter':<40}{'value':>10}")
        for name in sorted(collector.counters):
            out.append(f"{name:<40}{_fmt(collector.counters[name]):>10}")

    if collector.gauges:
        out.append("")
        out.append(f"{'gauge':<40}{'value':>10}")
        for name in sorted(collector.gauges):
            out.append(f"{name:<40}{_fmt(collector.gauges[name]):>10}")

    if collector.histograms:
        out.append("")
        out.append(f"{'histogram':<32}{'count':>7}{'mean':>9}"
                   f"{'min':>8}{'max':>8}")
        for name in sorted(collector.histograms):
            count, total, lo, hi = collector.histograms[name]
            mean = total / count if count else 0.0
            out.append(f"{name:<32}{_fmt(count):>7}{mean:>9.1f}"
                       f"{_fmt(lo):>8}{_fmt(hi):>8}")

    if collector.notes:
        out.append("")
        for name in sorted(collector.notes):
            if name == "engine.native_kernel.status":
                continue  # already in the derived header
            out.append(f"{name}: {collector.notes[name]}")
    return "\n".join(out)
