"""Regression detection and reporting over ledger manifests.

``repro ledger diff A B`` compares two manifests (or a run against a
pinned baseline) along the axes the tentpole analyses care about:

- **accuracy** -- every shared ``metrics`` value (breakdown rows in
  percentage points, bench error figures) within a configurable
  absolute deviation (``--threshold-pp``);
- **throughput** -- timing-derived ``perf`` metrics (engine/pipeline
  speedups): a drop below ``--threshold-speedup`` x baseline is a
  regression;
- **efficiency** -- the cache hit rate derived from the session and
  artifact-cache counters must not fall by more than
  ``--threshold-hit-rate``; the ``session.simulate`` simulator-run
  count must not grow by more than ``--threshold-sims`` runs;
- **phases** -- simulate/build/analyze wall-clock ratios, reported for
  context but never flagged (wall-clock across hosts is not a
  contract).

The same :class:`LedgerDiff` renders as a terminal table (in the
``--metrics`` style of :mod:`repro.obs.metrics`) and as a
self-contained HTML report with per-phase timing bars.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Thresholds",
    "Finding",
    "LedgerDiff",
    "diff_manifests",
    "render_diff_table",
    "render_html_report",
    "render_dashboard_html",
]


@dataclass(frozen=True)
class Thresholds:
    """The configurable regression gates of ``repro ledger diff``."""

    #: max absolute drift of an accuracy metric, in percentage points
    breakdown_pp: float = 1.0
    #: min acceptable (after / before) ratio of a speedup metric
    speedup_ratio: float = 0.8
    #: max acceptable drop of the cache hit rate (0.1 = 10 points)
    cache_hit_drop: float = 0.1
    #: max acceptable growth of the simulator-run count, in runs
    simulate_runs: int = 0


@dataclass(frozen=True)
class Finding:
    """One compared quantity, with its verdict."""

    metric: str
    before: Optional[float]
    after: Optional[float]
    delta: float
    threshold: str
    #: "ok" | "regression" | "info" (never gated)
    verdict: str = "ok"

    @property
    def regressed(self) -> bool:
        return self.verdict == "regression"


@dataclass
class LedgerDiff:
    """Everything ``diff``/``report`` derived from two manifests."""

    before_id: str
    after_id: str
    before_command: str
    after_command: str
    same_config: bool
    findings: List[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.regressed]


def _cache_hit_rate(counters: Dict[str, Any]) -> Optional[float]:
    """Aggregate cache hit rate of one run (None when nothing cached)."""
    hits = misses = 0.0
    for name, value in counters.items():
        if name.endswith((".memo_hit", ".cache_hit")) or \
                name.endswith(".hit") and ".cache" in name:
            hits += value
        elif name == "session.simulate" or \
                (name.endswith(".miss") and ".cache" in name):
            misses += value
    if not hits and not misses:
        return None
    return hits / (hits + misses)


def diff_manifests(before: Dict[str, Any], after: Dict[str, Any],
                   thresholds: Optional[Thresholds] = None) -> LedgerDiff:
    """Compare two manifests; returns the full finding list."""
    t = thresholds or Thresholds()
    diff = LedgerDiff(
        before_id=before["meta"]["run_id"],
        after_id=after["meta"]["run_id"],
        before_command=before["run"]["command"],
        after_command=after["run"]["command"],
        same_config=(before["run"]["config_digest"]
                     == after["run"]["config_digest"]),
    )
    findings = diff.findings

    # accuracy metrics: shared keys, absolute pp deviation
    a_metrics, b_metrics = before.get("metrics", {}), after.get("metrics", {})
    for name in sorted(set(a_metrics) & set(b_metrics)):
        b, a = float(a_metrics[name]), float(b_metrics[name])
        delta = a - b
        findings.append(Finding(
            metric=name, before=b, after=a, delta=delta,
            threshold=f"|delta| <= {t.breakdown_pp:g} pp",
            verdict="regression" if abs(delta) > t.breakdown_pp else "ok"))
    for name in sorted(set(a_metrics) ^ set(b_metrics)):
        source = a_metrics if name in a_metrics else b_metrics
        findings.append(Finding(
            metric=name, before=a_metrics.get(name), after=b_metrics.get(name),
            delta=0.0, threshold="present in one run only", verdict="info"))

    # throughput: speedup-named perf metrics gate on the ratio
    a_perf, b_perf = before.get("perf", {}), after.get("perf", {})
    for name in sorted(set(a_perf) & set(b_perf)):
        b, a = float(a_perf[name]), float(b_perf[name])
        if "speedup" in name and b > 0:
            ratio = a / b
            findings.append(Finding(
                metric=name, before=b, after=a, delta=a - b,
                threshold=f"after/before >= {t.speedup_ratio:g}",
                verdict="regression" if ratio < t.speedup_ratio else "ok"))
        else:
            findings.append(Finding(
                metric=f"perf.{name}", before=b, after=a, delta=a - b,
                threshold="informational", verdict="info"))

    # efficiency: cache hit rate and simulator-run count
    a_rate = _cache_hit_rate(before.get("counters", {}))
    b_rate = _cache_hit_rate(after.get("counters", {}))
    if a_rate is not None and b_rate is not None:
        drop = a_rate - b_rate
        findings.append(Finding(
            metric="cache.hit_rate", before=round(a_rate, 4),
            after=round(b_rate, 4), delta=round(-drop, 4),
            threshold=f"drop <= {t.cache_hit_drop:g}",
            verdict="regression" if drop > t.cache_hit_drop else "ok"))
    a_sims = before.get("counters", {}).get("session.simulate")
    b_sims = after.get("counters", {}).get("session.simulate")
    if a_sims is not None or b_sims is not None:
        a_sims, b_sims = float(a_sims or 0), float(b_sims or 0)
        grown = b_sims - a_sims
        findings.append(Finding(
            metric="session.simulate", before=a_sims, after=b_sims,
            delta=grown,
            threshold=f"growth <= {t.simulate_runs:g} run(s)",
            verdict="regression" if (diff.same_config
                                     and grown > t.simulate_runs)
            else ("info" if not diff.same_config else "ok")))

    # phase wall-clock: context only
    for phase in ("simulate", "build", "analyze", "other"):
        b = float(before.get("phases", {}).get(phase, 0.0))
        a = float(after.get("phases", {}).get(phase, 0.0))
        if b or a:
            findings.append(Finding(
                metric=f"phase.{phase}_ms", before=b, after=a,
                delta=a - b, threshold="informational", verdict="info"))
    return diff


# ---------------------------------------------------------------------
# terminal rendering
# ---------------------------------------------------------------------

def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.3f}"


def render_diff_table(diff: LedgerDiff,
                      show_info: bool = True) -> str:
    """The ``repro ledger diff`` terminal table."""
    out = [f"== ledger diff: {diff.before_id} -> {diff.after_id} "
           f"({diff.before_command} -> {diff.after_command}) =="]
    out.append("configs are identical" if diff.same_config
               else "configs DIFFER (config_digest changed)")
    count = len(diff.regressions)
    out.append(f"regressions: {count}" if count else "regressions: none")
    out.append("")
    out.append(f"{'metric':<36}{'before':>12}{'after':>12}"
               f"{'delta':>12}  verdict")
    for finding in diff.findings:
        if finding.verdict == "info" and not show_info:
            continue
        out.append(
            f"{finding.metric:<36}{_fmt(finding.before):>12}"
            f"{_fmt(finding.after):>12}{_fmt(finding.delta):>12}"
            f"  {finding.verdict.upper() if finding.regressed else finding.verdict}")
    return "\n".join(out)


# ---------------------------------------------------------------------
# HTML report
# ---------------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a1a2e; max-width: 70em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.9em; }
th, td { border: 1px solid #d0d0e0; padding: 0.3em 0.8em;
         text-align: right; }
th { background: #eef0f8; } td.name, th.name { text-align: left; }
tr.regression td { background: #ffe3e3; font-weight: 600; }
tr.info td { color: #667; }
.bar { display: inline-block; height: 0.8em; background: #5470c6;
       vertical-align: middle; border-radius: 2px; }
.bar.simulate { background: #5470c6; } .bar.build { background: #91cc75; }
.bar.analyze { background: #fac858; } .bar.other { background: #b6a2de; }
.ok { color: #2a7; } .bad { color: #c33; font-weight: 700; }
code { background: #f2f3f8; padding: 0.1em 0.3em; border-radius: 3px; }
td.serial { color: #c33; } td.parallel { color: #2a7; }
td.independent { color: #667; }
"""


def _phase_bars(manifest: Dict[str, Any], max_ms: float) -> str:
    rows = []
    for phase in ("simulate", "build", "analyze", "other"):
        ms = float(manifest.get("phases", {}).get(phase, 0.0))
        width = 0 if max_ms <= 0 else max(1, round(280 * ms / max_ms))
        rows.append(
            f"<tr><td class='name'>{phase}</td>"
            f"<td class='name'><span class='bar {phase}' "
            f"style='width:{width}px'></span></td>"
            f"<td>{ms:.1f} ms</td></tr>")
    return ("<table><tr><th class='name'>phase</th>"
            "<th class='name'>wall-clock</th><th>ms</th></tr>"
            + "".join(rows) + "</table>")


def _selfprofile_section(manifest: Dict[str, Any]) -> str:
    """The run's icost self-profile, when the manifest carries one.

    Renders next to the phase bars: the coverage headline, then the
    ``cost(S)`` / ``icost({a,b})`` rows with the serial / parallel /
    independent classification colour-coded.
    """
    profile = manifest.get("selfprofile")
    if not profile:
        return ""
    coverage = float(profile.get("coverage", 0.0))
    head = (f"<p>self-profile: modeled schedule "
            f"{float(profile.get('total_ms', 0.0)):.1f} ms of "
            f"{float(profile.get('wall_ms', 0.0)):.1f} ms wall "
            f"({100.0 * coverage:.1f}% accounted, "
            f"{profile.get('processes', 1)} process(es))</p>")
    rows = []
    for row in profile.get("rows", ()):
        cls = html.escape(row.get("classification") or "")
        label = ("cost(%s)" % row["label"] if row["kind"] == "cost"
                 else "icost({%s})" % row["label"]
                 if row["kind"] == "interaction" else row["label"])
        rows.append(
            f"<tr><td class='name'><code>{html.escape(label)}</code></td>"
            f"<td>{float(row['ms']):+.2f}</td>"
            f"<td>{float(row['percent']):+.1f}%</td>"
            f"<td class='{cls or 'name'}'>{cls or '&mdash;'}</td></tr>")
    return (head + "<table><tr><th class='name'>self-icost row</th>"
            "<th>ms</th><th>% of schedule</th><th>class</th></tr>"
            + "".join(rows) + "</table>")


def _manifest_summary(manifest: Dict[str, Any]) -> str:
    meta, run = manifest["meta"], manifest["run"]
    rows = [
        ("run id", meta["run_id"]),
        ("recorded", meta["timestamp"]),
        ("command", run["command"]),
        ("config digest", run["config_digest"][:16]),
        ("trace fingerprint", (run.get("trace_fingerprint") or "-")[:16]),
        ("workload", str(run["config"].get("workload"))),
        ("engine / jobs / windows",
         f"{run.get('engine') or 'default'} / {run.get('jobs')}"
         f" / {run.get('windows')}"),
        ("host", meta["host"].get("hostname", "?")),
        ("wall", f"{manifest.get('perf', {}).get('wall_ms', 0):.0f} ms"),
    ]
    return ("<table>" + "".join(
        f"<tr><td class='name'>{html.escape(str(k))}</td>"
        f"<td class='name'><code>{html.escape(str(v))}</code></td></tr>"
        for k, v in rows) + "</table>")


def render_html_report(manifests: Sequence[Dict[str, Any]],
                       diff: Optional[LedgerDiff] = None,
                       title: str = "repro run-ledger report",
                       paper_deltas: Optional[Dict[str, Tuple[float, float]]]
                       = None) -> str:
    """A self-contained HTML report over *manifests* (newest last).

    With a *diff*, the regression table is included; *paper_deltas*
    (``label -> (measured, paper)``) adds the accuracy-vs-paper
    section bench manifests carry.
    """
    parts = [f"<!doctype html><html><head><meta charset='utf-8'>"
             f"<title>{html.escape(title)}</title>"
             f"<style>{_CSS}</style></head><body>"
             f"<h1>{html.escape(title)}</h1>"]
    if diff is not None:
        count = len(diff.regressions)
        badge = (f"<span class='bad'>{count} regression(s)</span>"
                 if count else "<span class='ok'>no regressions</span>")
        parts.append(
            f"<h2>Diff {html.escape(diff.before_id)} &rarr; "
            f"{html.escape(diff.after_id)}</h2>"
            f"<p>{badge} &mdash; configs "
            f"{'identical' if diff.same_config else 'differ'}</p>")
        parts.append("<table><tr><th class='name'>metric</th>"
                     "<th>before</th><th>after</th><th>delta</th>"
                     "<th>threshold</th><th>verdict</th></tr>")
        for f in diff.findings:
            parts.append(
                f"<tr class='{f.verdict}'>"
                f"<td class='name'>{html.escape(f.metric)}</td>"
                f"<td>{_fmt(f.before)}</td><td>{_fmt(f.after)}</td>"
                f"<td>{_fmt(f.delta)}</td>"
                f"<td class='name'>{html.escape(f.threshold)}</td>"
                f"<td>{f.verdict}</td></tr>")
        parts.append("</table>")
    if paper_deltas:
        parts.append("<h2>Accuracy vs paper</h2>"
                     "<table><tr><th class='name'>metric</th>"
                     "<th>measured</th><th>paper</th><th>delta</th></tr>")
        for label in sorted(paper_deltas):
            measured, paper = paper_deltas[label]
            parts.append(
                f"<tr><td class='name'>{html.escape(label)}</td>"
                f"<td>{measured:.2f}</td><td>{paper:.2f}</td>"
                f"<td>{measured - paper:+.2f}</td></tr>")
        parts.append("</table>")
    max_ms = max((float(m.get("phases", {}).get(p, 0.0))
                  for m in manifests
                  for p in ("simulate", "build", "analyze", "other")),
                 default=0.0)
    for manifest in manifests:
        parts.append(f"<h2>Run <code>"
                     f"{html.escape(manifest['meta']['run_id'])}"
                     f"</code></h2>")
        parts.append(_manifest_summary(manifest))
        parts.append(_phase_bars(manifest, max_ms))
        parts.append(_selfprofile_section(manifest))
    parts.append("</body></html>")
    return "".join(parts)


# ---------------------------------------------------------------------
# live dashboard (the serve daemon's GET /dashboard)
# ---------------------------------------------------------------------

def _sparkline(values: Sequence[float], width: int = 280,
               height: int = 36) -> str:
    """An inline SVG sparkline (self-contained, no external assets)."""
    points = [float(v) for v in values]
    if not points:
        return "<span class='info'>no samples yet</span>"
    hi = max(points) or 1.0
    lo = min(points)
    span = (hi - lo) or 1.0
    n = len(points)
    step = width / max(1, n - 1)
    coords = " ".join(
        f"{i * step if n > 1 else width / 2:.1f},"
        f"{height - 2 - (height - 4) * (v - lo) / span:.1f}"
        for i, v in enumerate(points))
    return (f"<svg width='{width}' height='{height}' "
            f"viewBox='0 0 {width} {height}'>"
            f"<polyline points='{coords}' fill='none' "
            f"stroke='#5470c6' stroke-width='1.5'/></svg>"
            f"<span class='info'> {points[-1]:.1f} ms last, "
            f"{hi:.1f} ms peak ({n} sample(s))</span>")


def _stat_tiles(stats: Dict[str, Any]) -> str:
    cache = stats.get("cache", {})
    tiles = [
        ("queue depth", f"{stats.get('queue_depth', 0)}"
                        f" / {stats.get('queue_size', 0)}"),
        ("jobs", f"{stats.get('jobs_done', 0)} done, "
                 f"{stats.get('jobs_failed', 0)} failed"),
        ("sessions", f"{stats.get('sessions_active', 0)} active"),
        ("cache", f"{cache.get('hits', 0)} hit / "
                  f"{cache.get('misses', 0)} miss"),
        ("cache pressure", f"{cache.get('evictions', 0)} evicted, "
                           f"{cache.get('quarantined', 0)} quarantined"),
    ]
    cells = "".join(
        f"<td><div class='info'>{html.escape(label)}</div>"
        f"<div class='stat'>{html.escape(value)}</div></td>"
        for label, value in tiles)
    return f"<table class='tiles'><tr>{cells}</tr></table>"


def _route_table(routes: Sequence[Dict[str, Any]]) -> str:
    if not routes:
        return "<p class='info'>no requests served yet</p>"
    rows = []
    for r in routes:
        count = float(r.get("count", 0)) or 1.0
        rows.append(
            f"<tr><td class='name'><code>"
            f"{html.escape(str(r.get('route')))}</code></td>"
            f"<td>{html.escape(str(r.get('code')))}</td>"
            f"<td>{int(r.get('count', 0))}</td>"
            f"<td>{float(r.get('total_ms', 0.0)) / count:.1f}</td>"
            f"<td>{float(r.get('max_ms', 0.0)):.1f}</td></tr>")
    return ("<table><tr><th class='name'>route</th><th>code</th>"
            "<th>requests</th><th>mean ms</th><th>max ms</th></tr>"
            + "".join(rows) + "</table>")


def _runs_table(runs: Sequence[Dict[str, Any]]) -> str:
    if not runs:
        return ("<p class='info'>no recorded runs (start the daemon "
                "with a ledger directory)</p>")
    rows = []
    for r in runs:
        delta = r.get("baseline_wall_delta_ms")
        regressions = r.get("baseline_regressions")
        if regressions is None:
            verdict = "<td class='info'>&mdash;</td>"
        elif regressions:
            verdict = f"<td class='bad'>{int(regressions)} regression(s)</td>"
        else:
            verdict = "<td class='ok'>ok</td>"
        rows.append(
            f"<tr><td class='name'><code>"
            f"{html.escape(str(r.get('run_id')))}</code></td>"
            f"<td class='name'>{html.escape(str(r.get('recorded')))}</td>"
            f"<td class='name'>{html.escape(str(r.get('analysis')))}</td>"
            f"<td class='name'>{html.escape(str(r.get('workload') or '-'))}"
            f"</td><td>{float(r.get('wall_ms', 0.0)):.0f}</td>"
            f"<td>{'' if delta is None else f'{delta:+.0f}'}</td>"
            f"{verdict}</tr>")
    return ("<table><tr><th class='name'>run</th>"
            "<th class='name'>recorded</th>"
            "<th class='name'>analysis</th>"
            "<th class='name'>workload</th><th>wall ms</th>"
            "<th>&Delta; vs baseline</th><th>verdict</th></tr>"
            + "".join(rows) + "</table>")


def render_dashboard_html(doc: Dict[str, Any]) -> str:
    """The live serve dashboard from one snapshot document.

    *doc* is :meth:`repro.serve.server.ReproServer.dashboard_doc`:
    ``{"url", "stats", "telemetry": {"routes", "samples_ms"},
    "runs", "baseline"}``.  Pure function of the snapshot so tests can
    render without a live daemon; self-contained HTML (inline CSS +
    SVG sparkline, no external assets), sharing the report stylesheet.
    """
    telemetry = doc.get("telemetry", {})
    baseline = doc.get("baseline")
    extra_css = """
.tiles td { border: 1px solid #d0d0e0; padding: 0.6em 1.2em;
            text-align: left; } .stat { font-size: 1.2em;
            font-weight: 600; } .info { color: #667; font-size: 0.85em; }
"""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<meta http-equiv='refresh' content='5'>"
        f"<title>repro serve dashboard</title>"
        f"<style>{_CSS}{extra_css}</style></head><body>"
        f"<h1>repro serve dashboard &mdash; "
        f"<code>{html.escape(str(doc.get('url', '')))}</code></h1>",
        _stat_tiles(doc.get("stats", {})),
        "<h2>Request latency</h2>",
        _sparkline(telemetry.get("samples_ms", ())),
        _route_table(telemetry.get("routes", ())),
        "<h2>Recent runs</h2>",
    ]
    if baseline:
        parts.append(f"<p class='info'>deltas vs pinned baseline "
                     f"<code>{html.escape(str(baseline))}</code></p>")
    parts.append(_runs_table(doc.get("runs", ())))
    parts.append("</body></html>")
    return "".join(parts)
