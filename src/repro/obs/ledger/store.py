"""The append-only run ledger: persistent memory across analysis runs.

The in-process :mod:`repro.obs` collector dies with the process; the
ledger is what survives.  Every recorded run appends one **manifest**
-- a self-describing JSON document (:mod:`repro.obs.ledger.manifest`)
-- as one line of ``ledger.jsonl`` under the ledger directory
(``$REPRO_LEDGER_DIR`` or an explicit path).

Concurrency follows the :class:`repro.pipeline.artifacts.ArtifactCache`
discipline of never exposing a partial artifact: each manifest is
rendered to its line off to the side first, then published with a
*single* ``write(2)`` on an ``O_APPEND`` descriptor -- the append-only
analogue of the cache's tmp-file + atomic rename -- so concurrent
writers sharing one ledger can interleave whole lines but never split
one.  Readers tolerate (and report) trailing garbage from torn writes
on non-POSIX filesystems rather than refusing the whole ledger.

A ledger with no directory configured is *disabled*: every append is a
no-op and every read sees an empty ledger, so callers never
special-case ``--no-ledger`` (mirroring the disabled artifact cache).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

import repro.obs as obs

__all__ = [
    "LEDGER_DIR_ENV",
    "LEDGER_FILENAME",
    "LedgerError",
    "RunLedger",
    "open_ledger",
    "validate_manifest",
]

#: Environment variable supplying a default ledger directory.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: The append-only JSONL file inside the ledger directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Required top-level sections of a manifest and their types.  The
#: schema is deliberately shallow: deep content is versioned by
#: ``schema`` and digested into ``run``/``result``, so old readers can
#: always list/diff newer manifests.
_REQUIRED: Dict[str, type] = {
    "schema": int,
    "meta": dict,
    "run": dict,
    "phases": dict,
    "counters": dict,
    "metrics": dict,
    "perf": dict,
    "result": dict,
}

#: Required keys inside the sections the tooling navigates by.
_REQUIRED_META = ("run_id", "timestamp", "host")
_REQUIRED_RUN = ("command", "config_digest")


class LedgerError(ValueError):
    """A malformed manifest or an unresolvable run reference."""


def validate_manifest(manifest: Any) -> List[str]:
    """The list of schema problems of *manifest* (empty when valid)."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return [f"manifest is {type(manifest).__name__}, not an object"]
    for key, kind in _REQUIRED.items():
        if key not in manifest:
            problems.append(f"missing section {key!r}")
        elif not isinstance(manifest[key], kind):
            problems.append(f"section {key!r} is "
                            f"{type(manifest[key]).__name__}, "
                            f"not {kind.__name__}")
    for key in _REQUIRED_META:
        if key not in manifest.get("meta", {}):
            problems.append(f"missing meta.{key}")
    for key in _REQUIRED_RUN:
        if key not in manifest.get("run", {}):
            problems.append(f"missing run.{key}")
    return problems


class RunLedger:
    """Append-only JSONL store of run manifests.

    *root* is the ledger directory; ``None`` consults
    :data:`LEDGER_DIR_ENV`, and a ledger with no root is disabled.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(LEDGER_DIR_ENV) or None
        self.root = root
        #: one-line parse problems encountered by the last :meth:`runs`
        self.read_errors: List[str] = []

    @property
    def enabled(self) -> bool:
        return self.root is not None

    @property
    def path(self) -> str:
        """The ledger file location (raises when disabled)."""
        if not self.enabled:
            raise RuntimeError("run ledger is disabled")
        return os.path.join(self.root, LEDGER_FILENAME)

    # -- writing -------------------------------------------------------

    def append(self, manifest: Dict[str, Any]) -> Optional[str]:
        """Validate and publish *manifest*; returns its run id.

        The encoded line is written with one ``os.write`` on an
        ``O_APPEND`` descriptor so concurrent appenders never interleave
        within a line.  A disabled ledger returns ``None`` untouched.
        """
        if not self.enabled:
            return None
        problems = validate_manifest(manifest)
        if problems:
            raise LedgerError("refusing to append malformed manifest: "
                              + "; ".join(problems))
        line = json.dumps(manifest, sort_keys=True,
                          separators=(",", ":")) + "\n"
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        obs.count("ledger.append")
        return manifest["meta"]["run_id"]

    # -- reading -------------------------------------------------------

    def runs(self, strict: bool = False) -> List[Dict[str, Any]]:
        """Every manifest in append order (oldest first).

        Unparseable or schema-invalid lines are skipped and recorded in
        :attr:`read_errors` (``strict=True`` raises instead), so one
        torn write cannot take the history with it.
        """
        self.read_errors = []
        if not self.enabled or not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    manifest = json.loads(line)
                except json.JSONDecodeError as exc:
                    self._problem(f"line {lineno}: {exc}", strict)
                    continue
                problems = validate_manifest(manifest)
                if problems:
                    self._problem(
                        f"line {lineno}: " + "; ".join(problems), strict)
                    continue
                out.append(manifest)
        return out

    def _problem(self, message: str, strict: bool) -> None:
        if strict:
            raise LedgerError(message)
        self.read_errors.append(message)
        obs.count("ledger.read_error")

    def get(self, ref: str) -> Dict[str, Any]:
        """Resolve *ref* to one manifest.

        *ref* may be a full run id, a unique run-id prefix, or a
        negative index (``-1`` = most recent append).  Ambiguous or
        unknown references raise :class:`LedgerError`.
        """
        runs = self.runs()
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None and index < 0:
            if -index > len(runs):
                raise LedgerError(
                    f"ledger holds {len(runs)} run(s); no run {ref}")
            return runs[index]
        matches = [m for m in runs
                   if m["meta"]["run_id"].startswith(ref)]
        if not matches:
            raise LedgerError(f"no run matching {ref!r} "
                              f"({len(runs)} run(s) in the ledger)")
        distinct = {m["meta"]["run_id"] for m in matches}
        if len(distinct) > 1:
            raise LedgerError(
                f"run reference {ref!r} is ambiguous: "
                + ", ".join(sorted(distinct)))
        return matches[-1]  # re-runs of an identical config: latest wins


def open_ledger(root: Optional[str] = None,
                disabled: bool = False) -> RunLedger:
    """The run ledger an invocation should record into.

    ``disabled`` wins over everything, including a configured
    ``$REPRO_LEDGER_DIR`` -- it returns a ledger whose appends are
    no-ops (the ``--no-ledger`` contract).
    """
    if disabled:
        ledger = RunLedger.__new__(RunLedger)
        ledger.root = None
        ledger.read_errors = []
        return ledger
    return RunLedger(root)
