"""The append-only run ledger: persistent memory across analysis runs.

The in-process :mod:`repro.obs` collector dies with the process; the
ledger is what survives.  Every recorded run appends one **manifest**
-- a self-describing JSON document (:mod:`repro.obs.ledger.manifest`)
-- as one line of ``ledger.jsonl`` under the ledger directory
(``$REPRO_LEDGER_DIR`` or an explicit path).

Concurrency follows the :class:`repro.pipeline.artifacts.ArtifactCache`
discipline of never exposing a partial artifact: each manifest is
rendered to its line off to the side first, then published with a
*single* ``write(2)`` on an ``O_APPEND`` descriptor -- the append-only
analogue of the cache's tmp-file + atomic rename -- so concurrent
writers sharing one ledger can interleave whole lines but never split
one.  Readers tolerate (and report) trailing garbage from torn writes
on non-POSIX filesystems rather than refusing the whole ledger.

A ledger with no directory configured is *disabled*: every append is a
no-op and every read sees an empty ledger, so callers never
special-case ``--no-ledger`` (mirroring the disabled artifact cache).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

import repro.obs as obs

__all__ = [
    "LEDGER_DIR_ENV",
    "LEDGER_FILENAME",
    "INDEX_FILENAME",
    "LedgerError",
    "RunLedger",
    "open_ledger",
    "run_summary",
    "validate_manifest",
]

#: Environment variable supplying a default ledger directory.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: The append-only JSONL file inside the ledger directory.
LEDGER_FILENAME = "ledger.jsonl"

#: The byte-offset sidecar index next to it (a pure cache: deleting it
#: only costs one rescan).
INDEX_FILENAME = "ledger.index.jsonl"

#: Required top-level sections of a manifest and their types.  The
#: schema is deliberately shallow: deep content is versioned by
#: ``schema`` and digested into ``run``/``result``, so old readers can
#: always list/diff newer manifests.
_REQUIRED: Dict[str, type] = {
    "schema": int,
    "meta": dict,
    "run": dict,
    "phases": dict,
    "counters": dict,
    "metrics": dict,
    "perf": dict,
    "result": dict,
}

#: Required keys inside the sections the tooling navigates by.
_REQUIRED_META = ("run_id", "timestamp", "host")
_REQUIRED_RUN = ("command", "config_digest")


class LedgerError(ValueError):
    """A malformed manifest or an unresolvable run reference."""


def validate_manifest(manifest: Any) -> List[str]:
    """The list of schema problems of *manifest* (empty when valid)."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return [f"manifest is {type(manifest).__name__}, not an object"]
    for key, kind in _REQUIRED.items():
        if key not in manifest:
            problems.append(f"missing section {key!r}")
        elif not isinstance(manifest[key], kind):
            problems.append(f"section {key!r} is "
                            f"{type(manifest[key]).__name__}, "
                            f"not {kind.__name__}")
    for key in _REQUIRED_META:
        if key not in manifest.get("meta", {}):
            problems.append(f"missing meta.{key}")
    for key in _REQUIRED_RUN:
        if key not in manifest.get("run", {}):
            problems.append(f"missing run.{key}")
    return problems


class RunLedger:
    """Append-only JSONL store of run manifests.

    *root* is the ledger directory; ``None`` consults
    :data:`LEDGER_DIR_ENV`, and a ledger with no root is disabled.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(LEDGER_DIR_ENV) or None
        self.root = root
        #: one-line parse problems encountered by the last :meth:`runs`
        self.read_errors: List[str] = []
        # sidecar-index state: valid entries (append order), skipped
        # line count, and how many leading ledger bytes are covered
        self._index: List[Dict[str, Any]] = []
        self._index_skips = 0
        self._index_pos = 0
        self._index_loaded = False

    @property
    def enabled(self) -> bool:
        return self.root is not None

    @property
    def path(self) -> str:
        """The ledger file location (raises when disabled)."""
        if not self.enabled:
            raise RuntimeError("run ledger is disabled")
        return os.path.join(self.root, LEDGER_FILENAME)

    @property
    def index_path(self) -> str:
        """The sidecar index location (raises when disabled)."""
        if not self.enabled:
            raise RuntimeError("run ledger is disabled")
        return os.path.join(self.root, INDEX_FILENAME)

    # -- writing -------------------------------------------------------

    def append(self, manifest: Dict[str, Any]) -> Optional[str]:
        """Validate and publish *manifest*; returns its run id.

        The encoded line is written with one ``os.write`` on an
        ``O_APPEND`` descriptor so concurrent appenders never interleave
        within a line.  A disabled ledger returns ``None`` untouched.
        """
        if not self.enabled:
            return None
        problems = validate_manifest(manifest)
        if problems:
            raise LedgerError("refusing to append malformed manifest: "
                              + "; ".join(problems))
        line = json.dumps(manifest, sort_keys=True,
                          separators=(",", ":")) + "\n"
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        obs.count("ledger.append")
        return manifest["meta"]["run_id"]

    # -- reading -------------------------------------------------------

    def runs(self, strict: bool = False) -> List[Dict[str, Any]]:
        """Every manifest in append order (oldest first).

        Unparseable or schema-invalid lines are skipped and recorded in
        :attr:`read_errors` (``strict=True`` raises instead), so one
        torn write cannot take the history with it.
        """
        self.read_errors = []
        if not self.enabled or not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    manifest = json.loads(line)
                except json.JSONDecodeError as exc:
                    self._problem(f"line {lineno}: {exc}", strict)
                    continue
                problems = validate_manifest(manifest)
                if problems:
                    self._problem(
                        f"line {lineno}: " + "; ".join(problems), strict)
                    continue
                out.append(manifest)
        return out

    def _problem(self, message: str, strict: bool) -> None:
        if strict:
            raise LedgerError(message)
        self.read_errors.append(message)
        obs.count("ledger.read_error")

    # -- the sidecar index ---------------------------------------------
    #
    # Listing a multi-thousand-run ledger must stay O(page), not
    # O(history): the index records, for every *valid* manifest line,
    # its byte offset + length plus the handful of fields listings and
    # filters navigate by (run id, command, workload, config digest,
    # time).  It is a pure cache with the ledger's own durability
    # discipline -- whole-line O_APPEND extension, torn/duplicate lines
    # tolerated on load -- and a contiguity check that rescans from the
    # first gap, so a corrupt or stale sidecar can only cost time,
    # never correctness.

    def _entry_for(self, offset: int, length: int,
                   line: str) -> Dict[str, Any]:
        """The index entry of one raw ledger line (skip entry if bad)."""
        try:
            manifest = json.loads(line)
        except json.JSONDecodeError:
            return {"o": offset, "l": length, "skip": True}
        if validate_manifest(manifest):
            return {"o": offset, "l": length, "skip": True}
        meta, run = manifest["meta"], manifest["run"]
        return {
            "o": offset,
            "l": length,
            "id": meta["run_id"],
            "ts": meta["timestamp"],
            "t": meta.get("unix_time", 0.0),
            "cmd": run["command"],
            "wl": (run.get("config") or {}).get("workload"),
            "cfg": run["config_digest"],
        }

    def _load_sidecar(self) -> None:
        """Adopt the longest contiguous prefix of the sidecar file."""
        self._index, self._index_skips, self._index_pos = [], 0, 0
        self._index_loaded = True
        if not os.path.exists(self.index_path):
            return
        raw: List[Dict[str, Any]] = []
        with open(self.index_path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn trailing sidecar line: ignore
                try:
                    raw.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn mid-file line: the gap check below
        seen: Dict[int, Dict[str, Any]] = {}
        for entry in raw:
            if isinstance(entry, dict) and isinstance(
                    entry.get("o"), int) and isinstance(
                    entry.get("l"), int):
                seen.setdefault(entry["o"], entry)
        expected = 0
        for offset in sorted(seen):
            entry = seen[offset]
            if offset != expected:
                break  # gap (lost/torn line): rescan from here
            expected += entry["l"]
            if entry.get("skip"):
                self._index_skips += 1
            else:
                self._index.append(entry)
        self._index_pos = expected
        obs.count("ledger.index.load")

    def _extend_index(self) -> None:
        """Scan (only) the ledger bytes the index does not cover yet."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        if size < self._index_pos:
            # the append-only contract was broken (rotation, manual
            # edit): the cache is worthless, rebuild it from scratch
            try:
                os.unlink(self.index_path)
            except OSError:
                pass
            self._load_sidecar()
        if size <= self._index_pos:
            return
        new_entries: List[Dict[str, Any]] = []
        scanned = 0
        with open(self.path, "rb") as handle:
            handle.seek(self._index_pos)
            offset = self._index_pos
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn trailing line: index it once complete
                entry = self._entry_for(offset, len(raw),
                                        raw.decode("utf-8", "replace"))
                new_entries.append(entry)
                offset += len(raw)
                scanned += len(raw)
        if not new_entries:
            return
        lines = "".join(json.dumps(e, sort_keys=True,
                                   separators=(",", ":")) + "\n"
                        for e in new_entries)
        fd = os.open(self.index_path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, lines.encode("utf-8"))
        finally:
            os.close(fd)
        for entry in new_entries:
            if entry.get("skip"):
                self._index_skips += 1
            else:
                self._index.append(entry)
        self._index_pos = offset
        obs.count("ledger.index.extend")
        obs.count("ledger.index.scan_bytes", scanned)

    def refresh_index(self) -> List[Dict[str, Any]]:
        """The up-to-date index entries, oldest first (O(new bytes))."""
        if not self.enabled:
            return []
        if not self._index_loaded:
            self._load_sidecar()
        os.makedirs(self.root, exist_ok=True)
        self._extend_index()
        return self._index

    def read_at(self, offset: int, length: int) -> Dict[str, Any]:
        """The manifest published at ``[offset, offset+length)``."""
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            raw = handle.read(length)
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise LedgerError(
                f"stale ledger index at byte {offset}: {exc}")
        return manifest

    def page(self, limit: Optional[int] = 50, offset: int = 0,
             analysis: Optional[str] = None,
             workload: Optional[str] = None,
             since: Optional[Any] = None) -> Dict[str, Any]:
        """One page of run summaries, newest first, in O(page) reads.

        Filtering (*analysis* = the recorded command, *workload*,
        *since* = unix seconds or an ISO timestamp prefix) happens on
        the index alone; only the page's own manifest lines are read
        back from the ledger file.  Ordering is stable: descending
        append order, offset/limit over the filtered sequence.
        """
        if not self.enabled:
            return {"enabled": False, "total": 0, "limit": limit,
                    "offset": offset, "runs": []}
        with obs.span("ledger.page", limit=limit, offset=offset):
            entries = list(self.refresh_index())
            entries.reverse()  # newest first
            if analysis is not None:
                entries = [e for e in entries if e["cmd"] == analysis]
            if workload is not None:
                entries = [e for e in entries if e["wl"] == workload]
            if since is not None:
                try:
                    floor = float(since)
                    entries = [e for e in entries
                               if float(e.get("t") or 0.0) >= floor]
                except (TypeError, ValueError):
                    entries = [e for e in entries
                               if e.get("ts", "") >= str(since)]
            total = len(entries)
            window = entries[offset:] if limit is None \
                else entries[offset:offset + max(0, limit)]
            runs = [run_summary(self.read_at(e["o"], e["l"]))
                    for e in window]
            if window:
                obs.count("ledger.page.lines_read", len(window))
        return {"enabled": True, "total": total, "limit": limit,
                "offset": offset, "skipped_lines": self._index_skips,
                "runs": runs}

    def get(self, ref: str) -> Dict[str, Any]:
        """Resolve *ref* to one manifest, via the index (O(1) reads).

        *ref* may be a full run id, a unique run-id prefix, or a
        negative index (``-1`` = most recent append).  Ambiguous or
        unknown references raise :class:`LedgerError`.
        """
        entries = self.refresh_index()
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None and index < 0:
            if -index > len(entries):
                raise LedgerError(
                    f"ledger holds {len(entries)} run(s); no run {ref}")
            entry = entries[index]
            return self.read_at(entry["o"], entry["l"])
        matches = [e for e in entries if e["id"].startswith(ref)]
        if not matches:
            raise LedgerError(f"no run matching {ref!r} "
                              f"({len(entries)} run(s) in the ledger)")
        distinct = {e["id"] for e in matches}
        if len(distinct) > 1:
            raise LedgerError(
                f"run reference {ref!r} is ambiguous: "
                + ", ".join(sorted(distinct)))
        entry = matches[-1]  # identical re-runs: latest wins
        return self.read_at(entry["o"], entry["l"])


def run_summary(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """The listing row of one manifest (the ``/v1/runs`` item shape)."""
    meta, run = manifest["meta"], manifest["run"]
    return {
        "run_id": meta["run_id"],
        "recorded": meta["timestamp"],
        "unix_time": meta.get("unix_time", 0.0),
        "analysis": run["command"],
        "workload": (run.get("config") or {}).get("workload"),
        "config_digest": run["config_digest"][:12],
        "wall_ms": manifest.get("perf", {}).get("wall_ms", 0.0),
        "result_type": manifest.get("result", {}).get("type"),
    }


def open_ledger(root: Optional[str] = None,
                disabled: bool = False) -> RunLedger:
    """The run ledger an invocation should record into.

    ``disabled`` wins over everything, including a configured
    ``$REPRO_LEDGER_DIR`` -- it returns a ledger whose appends are
    no-ops (the ``--no-ledger`` contract).
    """
    if disabled:
        ledger = RunLedger.__new__(RunLedger)
        ledger.root = None
        ledger.read_errors = []
        ledger._index = []
        ledger._index_skips = 0
        ledger._index_pos = 0
        ledger._index_loaded = False
        return ledger
    return RunLedger(root)
