"""Building one run manifest: everything a run was, in one document.

A manifest is the ledger's unit of record, split into sections by
volatility so regression tooling (and the determinism test) can reason
about them uniformly:

``schema``, ``run``, ``counters``, ``metrics``, ``result``
    **Deterministic**: identical code + identical :class:`RunConfig` +
    identical cache state produce byte-identical sections.  ``run``
    carries the config payload, its content digest, the trace
    fingerprint and the engine/pipeline knobs; ``metrics`` carries the
    flat numeric headline values regression detection compares (e.g.
    breakdown percentages in pp); ``result`` digests the typed result.

``meta``, ``phases``, ``perf``, ``selfprofile``
    **Volatile**: run id, timestamp, host description, per-phase
    wall-clock (simulate/build/analyze, derived from the spans the
    pipeline already publishes), timing-derived result metrics
    (speedups, wall-clock per bench case) and -- when the run asked
    for one -- the icost self-profile of the tool's own schedule.

:func:`stable_view` strips the volatile sections -- the "bit-identical
modulo timestamps/host" contract ``tests/test_ledger.py`` pins.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import platform
import socket
import time
from typing import Any, Dict, Optional

from repro.obs.core import Collector

__all__ = [
    "MANIFEST_SCHEMA",
    "VOLATILE_SECTIONS",
    "build_manifest",
    "host_info",
    "phase_timings",
    "result_metrics",
    "stable_view",
]

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_SCHEMA = 1

#: Sections excluded from the determinism contract (and from
#: :func:`stable_view`).  ``selfprofile`` only appears on runs that
#: asked for one (``repro selfprofile``, ``repro bench --self-icost``).
VOLATILE_SECTIONS = ("meta", "phases", "perf", "selfprofile")

#: Monolithic-path span names folded into each manifest phase; the
#: pipeline's own stage spans come from
#: :data:`repro.pipeline.runner.STAGE_PHASES` so the mapping cannot
#: drift from the stage names the runner actually emits.
_PHASE_SPANS = {
    "workload.trace": "simulate",
    "sim.run": "simulate",
    "session.sweep": "simulate",
    "sensitivity.sweep": "simulate",
    "graph.build": "build",
    "engine.cp_batch": "analyze",
    "engine.pool_dispatch": "analyze",
    "breakdown.interaction": "analyze",
    "breakdown.powerset": "analyze",
    "breakdown.traditional": "analyze",
    "profiler.collect": "analyze",
    "profiler.reconstruct": "analyze",
    "profiler.analyze": "analyze",
}

#: Process-wide uniqueness for run ids minted in the same microsecond.
_SEQUENCE = itertools.count()


def _phase_map() -> Dict[str, str]:
    from repro.pipeline.runner import STAGE_PHASES

    mapping = dict(_PHASE_SPANS)
    mapping.update(STAGE_PHASES)
    return mapping


def host_info() -> Dict[str, Any]:
    """A short description of where a run happened (volatile)."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "pid": os.getpid(),
    }


def phase_timings(collector: Optional[Collector]) -> Dict[str, float]:
    """Wall-clock milliseconds per phase, from the recorded spans.

    Spans are bucketed into ``simulate`` / ``build`` / ``analyze`` via
    the stage names the pipeline and the monolithic path already
    publish; anything unrecognised lands in ``other``.  Only top-level
    attribution is attempted: nested spans of the same phase double
    into their bucket, so the numbers are a per-phase activity profile,
    not a partition of the run's wall-clock.
    """
    phases = {"simulate": 0.0, "build": 0.0, "analyze": 0.0, "other": 0.0}
    if collector is None:
        return phases
    mapping = _phase_map()
    skip_prefixes = ("pipeline.run",)  # umbrella span: covered by stages
    for name, _ts, dur, *_rest in collector.spans:
        if name.startswith(skip_prefixes):
            continue
        phases[mapping.get(name, "other")] += dur / 1000.0
    return {phase: round(ms, 3) for phase, ms in phases.items()}


def result_metrics(result: Any) -> Dict[str, float]:
    """Flat deterministic numeric metrics of *result*.

    Results can publish their own (``stable_metrics()``, the bench
    results do); otherwise any embedded breakdown contributes its rows
    as ``breakdown.<label>_pp``.  These are the values
    ``repro ledger diff`` compares in percentage points.
    """
    stable = getattr(result, "stable_metrics", None)
    if callable(stable):
        return {name: float(value) for name, value in stable().items()}
    breakdown = getattr(result, "breakdown", None)
    metrics: Dict[str, float] = {}
    for entry in getattr(breakdown, "entries", ()) or ():
        if entry.kind in ("base", "interaction"):
            metrics[f"breakdown.{entry.label}_pp"] = round(entry.percent, 4)
    delta = getattr(result, "delta", None)
    if delta is not None:  # compare's (before, after) cycle rows
        for label, (before, after) in getattr(delta, "rows", {}).items():
            metrics[f"compare.{label}.delta_cycles"] = round(
                float(after) - float(before), 4)
    return metrics


def _perf_metrics(result: Any) -> Dict[str, float]:
    """Timing-derived result metrics (volatile; bench speedups)."""
    perf = getattr(result, "perf_metrics", None)
    if callable(perf):
        return {name: float(value) for name, value in perf().items()}
    return {}


def _result_digest(result: Any) -> str:
    """sha256 of the result's *stable* JSON rendering."""
    stable = getattr(result, "stable_json", None)
    text = stable() if callable(stable) else result.to_json()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _counters(collector: Optional[Collector]) -> Dict[str, float]:
    if collector is None:
        return {}
    return {name: (int(v) if float(v).is_integer() else v)
            for name, v in sorted(collector.counters.items())}


def _config_digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def build_manifest(command: str, session, result: Any,
                   collector: Optional[Collector] = None,
                   wall_s: float = 0.0,
                   extra_run: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """The manifest of one completed analysis run.

    *session* supplies the :class:`~repro.session.RunConfig` and (when
    it was resolved during the run) the trace whose fingerprint anchors
    the manifest; the trace is never resolved just to fingerprint it.
    """
    from repro import __version__
    from repro.pipeline.artifacts import trace_fingerprint

    run_cfg = json.loads(session.run.to_json())
    fingerprint = None
    if getattr(session, "_trace", None) is not None:
        fingerprint = trace_fingerprint(session._trace)
    run_section: Dict[str, Any] = {
        "command": command,
        "version": __version__,
        "config": run_cfg,
        "config_digest": _config_digest(run_cfg),
        "trace_fingerprint": fingerprint,
        "engine": run_cfg.get("engine"),
        "jobs": run_cfg.get("jobs"),
        "windows": run_cfg.get("windows"),
        "approx": run_cfg.get("approx"),
    }
    if extra_run:
        run_section.update(extra_run)
    timestamp = time.time()
    run_id = hashlib.sha256(
        f"{run_section['config_digest']}:{command}:{timestamp!r}:"
        f"{os.getpid()}:{next(_SEQUENCE)}".encode()).hexdigest()[:12]
    selfprofile = getattr(result, "selfprofile_payload", None)
    selfprofile = selfprofile() if callable(selfprofile) else None
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "meta": {
            "run_id": run_id,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S",
                                       time.localtime(timestamp)),
            "unix_time": round(timestamp, 3),
            "host": host_info(),
        },
        "run": run_section,
        "phases": phase_timings(collector),
        "counters": _counters(collector),
        "metrics": result_metrics(result),
        "perf": {
            "wall_ms": round(wall_s * 1000.0, 3),
            **_perf_metrics(result),
        },
        "result": {
            "type": type(result).__name__,
            "digest": _result_digest(result),
        },
    }
    if selfprofile:
        manifest["selfprofile"] = selfprofile
    return manifest


def stable_view(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """*manifest* without its volatile sections.

    Two runs of identical code and configuration must agree on this
    view byte for byte -- the ledger's reproducibility contract.
    """
    return {key: value for key, value in manifest.items()
            if key not in VOLATILE_SECTIONS}
