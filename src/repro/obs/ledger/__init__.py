"""Cross-run observability: the append-only run ledger.

:mod:`repro.obs` answers "where did *this* run spend its time"; the
ledger answers the longitudinal question -- did accuracy, throughput
or cache efficiency regress *between* runs?  Three pieces:

- :mod:`repro.obs.ledger.manifest` builds one run **manifest** (config
  digest, trace fingerprint, per-phase wall-clock, counters, result
  metrics + digest, host info), split into deterministic and volatile
  sections;
- :mod:`repro.obs.ledger.store` appends manifests atomically to a
  JSONL ledger (``$REPRO_LEDGER_DIR``) and resolves run references;
- :mod:`repro.obs.ledger.report` diffs two manifests under
  configurable thresholds and renders terminal / HTML reports.

See ``docs/OBSERVABILITY.md`` ("Run ledger & benchmarking").
"""

from repro.obs.ledger.manifest import (
    MANIFEST_SCHEMA,
    VOLATILE_SECTIONS,
    build_manifest,
    host_info,
    phase_timings,
    result_metrics,
    stable_view,
)
from repro.obs.ledger.report import (
    Finding,
    LedgerDiff,
    Thresholds,
    diff_manifests,
    render_dashboard_html,
    render_diff_table,
    render_html_report,
)
from repro.obs.ledger.store import (
    INDEX_FILENAME,
    LEDGER_DIR_ENV,
    LEDGER_FILENAME,
    LedgerError,
    RunLedger,
    open_ledger,
    run_summary,
    validate_manifest,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "VOLATILE_SECTIONS",
    "build_manifest",
    "host_info",
    "phase_timings",
    "result_metrics",
    "stable_view",
    "Finding",
    "LedgerDiff",
    "Thresholds",
    "diff_manifests",
    "render_dashboard_html",
    "render_diff_table",
    "render_html_report",
    "INDEX_FILENAME",
    "LEDGER_DIR_ENV",
    "LEDGER_FILENAME",
    "LedgerError",
    "RunLedger",
    "open_ledger",
    "run_summary",
    "validate_manifest",
]
