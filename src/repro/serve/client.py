"""A stdlib-only client for the ``repro serve`` daemon.

:class:`ServeClient` speaks the HTTP/JSON protocol of
:mod:`repro.serve.server` with nothing but :mod:`urllib`, so the bench
suite, the smoke tests and CI scripts need no extra dependencies.  The
convenience :meth:`ServeClient.run` submits, polls until the job
settles and returns the full result document (including the ETag the
digest-equality checks compare).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An HTTP-level failure talking to the daemon.

    Carries the response *status* and decoded *payload* so callers can
    branch on backpressure (429) without string matching.
    """

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: "
                         f"{payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Talks to one daemon at *base_url* (e.g. ``http://127.0.0.1:8377``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ---- transport ----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json",
                     **(headers or {})})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                raw = resp.read()
                try:
                    payload = json.loads(raw) if raw else {}
                except json.JSONDecodeError:  # text/plain endpoints
                    payload = raw.decode("utf-8", "replace")
                return resp.status, payload, dict(resp.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            return exc.code, payload, dict(exc.headers or {})

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ok=(200, 202)) -> Dict[str, Any]:
        status, payload, _headers = self._request(method, path, body)
        if status not in ok:
            raise ServeError(status, payload)
        return payload

    # ---- endpoints ----------------------------------------------------

    def health(self) -> bool:
        """True when ``GET /healthz`` answers ok."""
        try:
            return bool(self._checked("GET", "/healthz").get("ok"))
        except (ServeError, OSError):
            return False

    def analyses(self) -> List[Dict[str, str]]:
        """The registered analyses (name + help)."""
        return self._checked("GET", "/v1/analyses")["analyses"]

    def submit(self, analysis: str, argv: Optional[List[str]] = None,
               reuse: bool = True,
               wait: Optional[float] = None) -> Dict[str, Any]:
        """Submit one request; raises :class:`ServeError` on 4xx (429
        included -- check ``exc.status`` for backpressure).

        With *wait* (seconds), the server long-polls the job and the
        returned document is the full result when it finished in time
        (one round trip instead of submit + poll + fetch).
        """
        body: Dict[str, Any] = {"analysis": analysis,
                                "argv": list(argv or []),
                                "reuse": reuse}
        if wait:
            body["wait"] = wait
        return self._checked("POST", "/v1/jobs", body)

    def status(self, job_id: str,
               etag: Optional[str] = None) -> Dict[str, Any]:
        """Job status; with *etag*, a 304 returns ``{"state":
        "unchanged"}``."""
        headers = {"If-None-Match": f'"{etag}"'} if etag else None
        code, payload, _ = self._request("GET", f"/v1/jobs/{job_id}",
                                         headers=headers)
        if code == 304:
            return {"job": job_id, "state": "unchanged", "etag": etag}
        if code != 200:
            raise ServeError(code, payload)
        return payload

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's result document (409 while running)."""
        return self._checked("GET", f"/v1/jobs/{job_id}/result")

    def progress(self, job_id: str) -> List[str]:
        """The job's progress lines so far (one per finished span)."""
        status, payload, _ = self._request("GET",
                                           f"/v1/jobs/{job_id}/progress")
        if status != 200:
            raise ServeError(status, payload)
        text = payload if isinstance(payload, str) else ""
        return [line for line in text.splitlines() if line]

    def stats(self) -> Dict[str, Any]:
        """The daemon's queue/job/cache statistics."""
        return self._checked("GET", "/v1/stats")

    def metrics(self) -> str:
        """The raw Prometheus exposition text of ``GET /metrics``."""
        status, payload, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, payload if isinstance(payload, dict)
                             else {"error": payload})
        return payload if isinstance(payload, str) else ""

    def dashboard(self) -> str:
        """The live dashboard HTML (``GET /dashboard``)."""
        status, payload, _ = self._request("GET", "/dashboard")
        if status != 200:
            raise ServeError(status, payload if isinstance(payload, dict)
                             else {"error": payload})
        return payload if isinstance(payload, str) else ""

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's Chrome trace document (``traceEvents`` + meta)."""
        return self._checked("GET", f"/v1/jobs/{job_id}/trace")

    def runs(self, analysis: Optional[str] = None,
             workload: Optional[str] = None,
             since: Optional[Any] = None,
             limit: Optional[int] = None,
             offset: Optional[int] = None) -> Dict[str, Any]:
        """One page of the daemon's run ledger, newest first."""
        params = {"analysis": analysis, "workload": workload,
                  "since": since, "limit": limit, "offset": offset}
        query = urllib.parse.urlencode(
            {key: value for key, value in params.items()
             if value is not None})
        return self._checked("GET",
                             "/v1/runs" + (f"?{query}" if query else ""))

    def run_record(self, ref: str) -> Dict[str, Any]:
        """One recorded run (``{"run": summary, "manifest": ...}``).

        *ref* is a run id, a unique prefix, or a negative index
        (``-1`` = latest).  Named ``run_record`` because :meth:`run`
        is the execute-an-analysis convenience.
        """
        return self._checked(
            "GET", "/v1/runs/" + urllib.parse.quote(ref, safe=""))

    def runs_diff(self, a: str, b: str) -> Dict[str, Any]:
        """Regression findings between two recorded runs."""
        query = urllib.parse.urlencode({"a": a, "b": b})
        return self._checked("GET", f"/v1/runs/diff?{query}")

    def shutdown(self) -> None:
        """Ask the daemon to stop gracefully."""
        try:
            self._checked("POST", "/v1/shutdown")
        except (ServeError, OSError):
            pass

    # ---- convenience ---------------------------------------------------

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_s: float = 0.02) -> Dict[str, Any]:
        """Poll until the job settles; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc["state"] in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} "
                    f"after {timeout:g}s")
            time.sleep(poll_s)

    def run(self, analysis: str, argv: Optional[List[str]] = None,
            reuse: bool = True, timeout: float = 60.0) -> Dict[str, Any]:
        """Submit, wait, and return the full result document.

        Uses the long-poll submit (one round trip on the warm path)
        and falls back to status polling when the job outlives it.
        """
        doc = self.submit(analysis, argv, reuse=reuse, wait=timeout)
        if "rendered" in doc:  # finished within the long poll
            return doc
        if doc.get("state") == "failed":
            raise ServeError(500, {"error": doc.get("error",
                                                    "job failed"),
                                   **doc})
        final = self.wait(doc["job"], timeout=timeout)
        if final["state"] != "done":
            raise ServeError(500, {"error": final.get("error",
                                                      "job failed"),
                                   **final})
        return self.result(doc["job"])
