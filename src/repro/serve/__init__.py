"""Analysis-as-a-service: the declarative registry over HTTP/JSON.

``repro serve`` turns the single-shot CLI into a long-lived daemon: a
stdlib :class:`~http.server.ThreadingHTTPServer` front end
(:mod:`repro.serve.server`) over a bounded async job queue
(:mod:`repro.serve.jobs`) whose workers run registered analyses in
per-request :class:`~repro.session.AnalysisSession`\\ s sharing one
concurrent :class:`~repro.pipeline.artifacts.ArtifactCache` via a
:class:`~repro.session.SessionManager`.

The service contract (docs/SERVING.md):

- **backpressure** -- a full job queue answers HTTP 429 instead of
  accepting unbounded work;
- **reproducible results** -- every finished job carries an ETag-style
  digest over the ledger's :func:`~repro.obs.ledger.stable_view`
  manifest (minus warm/cold-sensitive counters), so concurrent
  identical requests provably produced bit-identical results;
- **job coalescing** -- identical in-flight requests share one
  execution by request key;
- **progress** -- each job streams one line per finished obs span of
  its worker thread.

:mod:`repro.serve.client` is the matching stdlib-only client used by
the bench suite, the smoke tests and CI.
"""

from repro.serve.jobs import Job, JobQueue, QueueFull
from repro.serve.server import ReproServer
from repro.serve.client import ServeClient

__all__ = ["Job", "JobQueue", "QueueFull", "ReproServer", "ServeClient"]
