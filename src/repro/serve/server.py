"""The ``repro serve`` HTTP front end (stdlib only).

A :class:`ReproServer` wraps a :class:`~http.server.ThreadingHTTPServer`
around one :class:`~repro.serve.jobs.JobQueue`.  Endpoints
(docs/SERVING.md):

========================  =============================================
``GET /healthz``          liveness: ``{"ok": true}``
``GET /v1/analyses``      the registered analyses (name + help)
``POST /v1/jobs``         submit ``{"analysis", "argv", "reuse",
                          "wait"}`` -- 202 accepted, 429 queue full,
                          404 unknown analysis, 400 malformed body;
                          with ``wait`` (seconds) the response blocks
                          on the job and carries the full result
                          document in the same round trip
``GET /v1/jobs/<id>``     job status; when done carries an ``ETag``
                          header and honours ``If-None-Match`` -> 304
``GET /v1/jobs/<id>/result``   rendered text + typed result JSON + ETag
``GET /v1/jobs/<id>/progress`` one line per finished obs span of the
                          job's worker (plain text snapshot)
``GET /v1/stats``         queue depth, job totals, shared-cache stats
``POST /v1/shutdown``     graceful stop (used by tests/CI)
========================  =============================================

Request handling threads only ever touch the queue's thread-safe
surface; analyses run on the queue's workers, never on HTTP threads,
so a slow analysis cannot starve health checks.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import repro.obs as obs
from repro.serve.jobs import JobQueue, QueueFull

__all__ = ["ReproServer"]


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`ReproServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to the obs logger instead of stderr."""
        obs.get_logger("serve").debug(format, *args)

    # ---- plumbing -----------------------------------------------------

    def _send_json(self, code: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _job_or_404(self, job_id: str):
        job = self.server.jobs.get(job_id)  # type: ignore[attr-defined]
        if job is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
        return job

    # ---- routes -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        """Dispatch the read-only endpoints."""
        server: "ReproServer" = self.server.owner  # type: ignore
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz":
            self._send_json(200, {"ok": True})
        elif path == "/v1/analyses":
            self._send_json(200, {"analyses": server.analyses()})
        elif path == "/v1/stats":
            self._send_json(200, server.stats())
        elif path.startswith("/v1/jobs/"):
            self._get_job(server, path[len("/v1/jobs/"):])
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def _result_doc(self, job) -> Dict[str, Any]:
        return {"job": job.id, "etag": job.etag,
                "rendered": job.rendered,
                "result": json.loads(job.result_json),
                "manifest": job.manifest}

    def _get_job(self, server: "ReproServer", rest: str) -> None:
        parts = rest.split("/")
        job = server.jobs.get(parts[0])
        if job is None:
            self._send_json(404, {"error": f"unknown job {parts[0]!r}"})
            return
        sub = parts[1] if len(parts) > 1 else ""
        if sub == "result":
            if job.state != "done":
                self._send_json(409, {"error": f"job is {job.state}",
                                      **job.status()})
                return
            self._send_json(200, self._result_doc(job),
                            headers={"ETag": f'"{job.etag}"'})
        elif sub == "progress":
            self._send_text(200, "\n".join(job.progress_lines()) + "\n")
        elif sub == "":
            headers = {}
            if job.state == "done" and job.etag:
                if self.headers.get("If-None-Match") == f'"{job.etag}"':
                    self.send_response(304)
                    self.send_header("ETag", f'"{job.etag}"')
                    self.send_header("Content-Length", "0")
                    self.end_headers()
                    return
                headers["ETag"] = f'"{job.etag}"'
            self._send_json(200, job.status(), headers=headers)
        else:
            self._send_json(404, {"error": f"no job endpoint {sub!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        """Dispatch the mutating endpoints (submit, shutdown)."""
        server: "ReproServer" = self.server.owner  # type: ignore
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/jobs":
            body = self._read_body()
            if body is None or not isinstance(body.get("analysis"), str):
                self._send_json(400, {"error": "body must be JSON with "
                                               "an 'analysis' name"})
                return
            argv = body.get("argv") or []
            if not (isinstance(argv, list)
                    and all(isinstance(a, str) for a in argv)):
                self._send_json(400,
                                {"error": "'argv' must be a string list"})
                return
            try:
                accepted = server.jobs.submit(
                    body["analysis"], argv,
                    reuse=bool(body.get("reuse", True)))
            except KeyError:
                self._send_json(404, {"error": "unknown analysis "
                                               f"{body['analysis']!r}"})
                return
            except QueueFull as exc:
                self._send_json(429, {"error": str(exc)},
                                headers={"Retry-After": "1"})
                return
            wait = body.get("wait")
            if wait:
                # long-poll submit: block (cheaply, on the job's done
                # event) and answer with the full result document in
                # this same round trip -- the warm-path fast lane
                job = server.jobs.get(accepted["job"])
                if job is not None:
                    job.done.wait(min(float(wait), 300.0))
                    if job.state == "done":
                        self._send_json(200, self._result_doc(job),
                                        headers={"ETag":
                                                 f'"{job.etag}"'})
                        return
                    self._send_json(200 if job.state == "failed"
                                    else 202, job.status())
                    return
            self._send_json(202, accepted)
        elif path == "/v1/shutdown":
            self._send_json(200, {"ok": True, "stopping": True})
            threading.Thread(target=server.stop, daemon=True).start()
        else:
            self._send_json(404, {"error": f"no route {path!r}"})


class ReproServer:
    """One serve daemon: HTTP front end + job queue + session manager.

    *manager* is the shared :class:`~repro.session.SessionManager`;
    *workers*/*queue_size* shape the job queue; *idle_reap_s* closes
    sessions idle past that many seconds between requests (0 disables
    reaping).  Port 0 binds an ephemeral port (tests); read it back
    from :attr:`port` after construction.
    """

    def __init__(self, manager, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, queue_size: int = 16,
                 idle_reap_s: float = 300.0) -> None:
        self.manager = manager
        self.jobs = JobQueue(manager, workers=workers,
                             queue_size=queue_size)
        self.idle_reap_s = idle_reap_s
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._httpd.jobs = self.jobs  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._reaper: Optional[threading.Timer] = None
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()

    @property
    def host(self) -> str:
        """The bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The service base URL."""
        return f"http://{self.host}:{self.port}"

    def analyses(self) -> list:
        """The registry as ``[{"name", "help"}, ...]``."""
        from repro.session.registry import all_analyses

        return [{"name": a.name, "help": a.help} for a in all_analyses()]

    def stats(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` document."""
        cache = self.manager.cache
        return {
            "queue_depth": self.jobs.depth(),
            "queue_size": self.jobs.queue_size,
            "jobs_done": self.jobs.jobs_done,
            "jobs_failed": self.jobs.jobs_failed,
            "sessions_active": len(self.manager.active()),
            "cache": {
                "enabled": cache.enabled,
                "hits": cache.hits,
                "misses": cache.misses,
                "stores": cache.stores,
                "evictions": cache.evictions,
                "quarantined": cache.quarantined,
            },
        }

    # ---- lifecycle ----------------------------------------------------

    def _reap_tick(self) -> None:
        if self._stopped.is_set() or not self.idle_reap_s:
            return
        self.manager.reap(self.idle_reap_s)
        self._reaper = threading.Timer(
            max(1.0, self.idle_reap_s / 4), self._reap_tick)
        self._reaper.daemon = True
        self._reaper.start()

    def start(self) -> None:
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http",
            kwargs={"poll_interval": 0.05}, daemon=True)
        self._thread.start()
        if self.idle_reap_s:
            self._reap_tick()
        obs.count("serve.start")

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or Ctrl-C)."""
        if self.idle_reap_s:
            self._reap_tick()
        obs.count("serve.start")
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut down: stop accepting, drain workers, close sessions."""
        with self._stop_lock:
            if self._stopped.is_set():
                return
            self._stopped.set()
        if self._reaper is not None:
            self._reaper.cancel()
        self._httpd.shutdown()
        self._httpd.server_close()
        self.jobs.shutdown()
        self.manager.close_all()
        if self._thread is not None:
            self._thread.join(timeout=10)
