"""The ``repro serve`` HTTP front end (stdlib only).

A :class:`ReproServer` wraps a :class:`~http.server.ThreadingHTTPServer`
around one :class:`~repro.serve.jobs.JobQueue`.  Endpoints
(docs/SERVING.md):

==============================  =======================================
``GET /healthz``                liveness: ``{"ok": true}``
``GET /v1/analyses``            the registered analyses (name + help)
``POST /v1/jobs``               submit ``{"analysis", "argv", "reuse",
                                "wait"}`` -- 202 accepted, 429 queue
                                full, 404 unknown analysis, 400
                                malformed body; with ``wait`` (seconds)
                                the response blocks on the job and
                                carries the full result document in the
                                same round trip
``GET /v1/jobs/<id>``           job status; when done carries an
                                ``ETag`` header and honours
                                ``If-None-Match`` -> 304
``GET /v1/jobs/<id>/result``    rendered text + typed result JSON + ETag
``GET /v1/jobs/<id>/progress``  one line per finished obs span of the
                                job's worker (plain text snapshot;
                                empty body while nothing finished)
``GET /v1/jobs/<id>/trace``     the job's span slice as a standalone
                                Chrome trace-event JSON document
``GET /v1/runs``                the run ledger, newest first
                                (``?analysis=&workload=&since=&limit=
                                &offset=``)
``GET /v1/runs/diff``           ``?a=REF&b=REF`` -- regression findings
                                between two recorded runs
``GET /v1/runs/<ref>``          one recorded manifest (run id, unique
                                prefix, or ``-1`` for the latest)
``GET /v1/stats``               queue depth, job totals, shared-cache
                                stats, requests served
``GET /metrics``                Prometheus text exposition of every obs
                                counter/gauge/histogram + per-endpoint
                                request telemetry
``GET /dashboard``              self-contained live HTML dashboard
``POST /v1/shutdown``           graceful stop (used by tests/CI)
==============================  =======================================

Request handling threads only ever touch the queue's thread-safe
surface; analyses run on the queue's workers, never on HTTP threads,
so a slow analysis cannot starve health checks.

Every request is instrumented: the handler times the dispatch and
folds the latency and response size into per-``{route, code}``
histograms (``serve.request_ms{code=200,route=/healthz}``) on the
server's **telemetry collector** -- a private, always-on
:class:`~repro.obs.core.Collector` that exists even when global obs is
off, so ``/metrics`` is never empty -- and, when global obs *is* on,
into the active collector too (enriching ``--metrics`` tables and run
manifests).  Route labels are normalized to patterns
(``/v1/jobs/{id}``) so label cardinality stays bounded no matter what
clients request.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

import repro.obs as obs
from repro.obs.core import Collector
from repro.obs.expo import encode_labels, parse_labeled, render_prometheus
from repro.obs import tracefile
from repro.obs.ledger import (
    LedgerError,
    diff_manifests,
    open_ledger,
    render_dashboard_html,
    run_summary,
)
from repro.serve.jobs import JobQueue, QueueFull

__all__ = ["ReproServer"]

#: content type of the Prometheus text exposition format
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`ReproServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to the obs logger instead of stderr."""
        obs.get_logger("serve").debug(format, *args)

    # ---- plumbing -----------------------------------------------------

    def _send_body(self, code: int, body: bytes, content_type: str,
                   headers: Optional[Dict[str, str]] = None) -> None:
        self._status = code
        self._resp_bytes = len(body)
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_body(code, body, "application/json", headers)

    def _send_text(self, code: int, text: str,
                   content_type: str =
                   "text/plain; charset=utf-8") -> None:
        self._send_body(code, text.encode("utf-8"), content_type)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _query(self) -> Dict[str, str]:
        """The request's query parameters (last value wins)."""
        parsed = parse_qs(urlsplit(self.path).query,
                          keep_blank_values=False)
        return {key: values[-1] for key, values in parsed.items()}

    # ---- instrumentation ----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._instrumented("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        self._instrumented("POST")

    def _instrumented(self, method: str) -> None:
        """Dispatch + record ``serve.request_ms{route,code}`` telemetry.

        ``self._route`` starts as the normalized route pattern
        ``(other)`` and is refined by the dispatcher; ``self._status``
        and ``self._resp_bytes`` are filled in by the send helpers, so
        the finally clause always has the full label set even when a
        handler raised after partially writing.
        """
        server: "ReproServer" = self.server.owner  # type: ignore
        self._route = "(other)"
        self._status = 0
        self._resp_bytes = 0
        t0 = time.perf_counter()
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if method == "GET":
                self._route_get(server, path)
            else:
                self._route_post(server, path)
        finally:
            elapsed_ms = (time.perf_counter() - t0) * 1000.0
            server.record_request(self._route, self._status,
                                  elapsed_ms, self._resp_bytes)

    # ---- GET routes ---------------------------------------------------

    def _route_get(self, server: "ReproServer", path: str) -> None:
        if path == "/healthz":
            self._route = path
            self._send_json(200, {"ok": True})
        elif path == "/v1/analyses":
            self._route = path
            self._send_json(200, {"analyses": server.analyses()})
        elif path == "/v1/stats":
            self._route = path
            self._send_json(200, server.stats())
        elif path == "/metrics":
            self._route = path
            self._send_text(200, server.metrics_text(),
                            content_type=EXPOSITION_CONTENT_TYPE)
        elif path == "/dashboard":
            self._route = path
            self._send_text(200,
                            render_dashboard_html(server.dashboard_doc()),
                            content_type="text/html; charset=utf-8")
        elif path == "/v1/runs":
            self._route = path
            self._get_runs(server)
        elif path == "/v1/runs/diff":
            self._route = path
            self._get_runs_diff(server)
        elif path.startswith("/v1/runs/"):
            self._route = "/v1/runs/{ref}"
            self._get_run(server, path[len("/v1/runs/"):])
        elif path.startswith("/v1/jobs/"):
            self._get_job(server, path[len("/v1/jobs/"):])
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def _get_runs(self, server: "ReproServer") -> None:
        query = self._query()
        try:
            limit = int(query.get("limit", 50))
            offset = int(query.get("offset", 0))
        except ValueError:
            self._send_json(400, {"error": "'limit' and 'offset' "
                                           "must be integers"})
            return
        if limit < 0 or offset < 0:
            self._send_json(400, {"error": "'limit' and 'offset' "
                                           "must be >= 0"})
            return
        try:
            page = server.ledger.page(
                limit=limit, offset=offset,
                analysis=query.get("analysis"),
                workload=query.get("workload"),
                since=query.get("since"))
        except (LedgerError, OSError) as exc:
            self._send_json(500, {"error": str(exc)})
            return
        self._send_json(200, page)

    def _get_run(self, server: "ReproServer", ref: str) -> None:
        try:
            manifest = server.ledger.get(ref)
        except LedgerError as exc:
            code = 409 if "ambiguous" in str(exc) else 404
            self._send_json(code, {"error": str(exc)})
            return
        except OSError as exc:
            self._send_json(500, {"error": str(exc)})
            return
        self._send_json(200, {"run": run_summary(manifest),
                              "manifest": manifest})

    def _get_runs_diff(self, server: "ReproServer") -> None:
        query = self._query()
        ref_a, ref_b = query.get("a"), query.get("b")
        if not ref_a or not ref_b:
            self._send_json(400, {"error": "need ?a=REF&b=REF"})
            return
        try:
            before = server.ledger.get(ref_a)
            after = server.ledger.get(ref_b)
        except LedgerError as exc:
            code = 409 if "ambiguous" in str(exc) else 404
            self._send_json(code, {"error": str(exc)})
            return
        except OSError as exc:
            self._send_json(500, {"error": str(exc)})
            return
        diff = diff_manifests(before, after)
        self._send_json(200, {
            "before": diff.before_id,
            "after": diff.after_id,
            "same_config": diff.same_config,
            "regressions": len(diff.regressions),
            "findings": [{
                "metric": f.metric, "before": f.before,
                "after": f.after, "delta": f.delta,
                "threshold": f.threshold, "verdict": f.verdict,
            } for f in diff.findings],
        })

    def _result_doc(self, job) -> Dict[str, Any]:
        return {"job": job.id, "etag": job.etag,
                "rendered": job.rendered,
                "result": json.loads(job.result_json),
                "manifest": job.manifest,
                "trace": job.trace_id}

    def _get_job(self, server: "ReproServer", rest: str) -> None:
        parts = rest.split("/")
        sub = parts[1] if len(parts) > 1 else ""
        known = sub if sub in ("", "result", "progress", "trace") \
            else "(other)"
        self._route = f"/v1/jobs/{{id}}/{known}" if known \
            else "/v1/jobs/{id}"
        job = server.jobs.get(parts[0])
        if job is None:
            self._send_json(404, {"error": f"unknown job {parts[0]!r}"})
            return
        if sub == "result":
            if job.state != "done":
                self._send_json(409, {"error": f"job is {job.state}",
                                      **job.status()})
                return
            self._send_json(200, self._result_doc(job),
                            headers={"ETag": f'"{job.etag}"'})
        elif sub == "progress":
            lines = job.progress_lines()
            # no finished spans yet -> an empty body, not a lone "\n"
            self._send_text(200, "\n".join(lines) + "\n" if lines else "")
        elif sub == "trace":
            self._send_text(200, server.trace_json(job),
                            content_type="application/json")
        elif sub == "":
            headers = {}
            if job.state == "done" and job.etag:
                if self.headers.get("If-None-Match") == f'"{job.etag}"':
                    self._status = 304
                    self._resp_bytes = 0
                    self.send_response(304)
                    self.send_header("ETag", f'"{job.etag}"')
                    self.send_header("Content-Length", "0")
                    self.end_headers()
                    return
                headers["ETag"] = f'"{job.etag}"'
            self._send_json(200, job.status(), headers=headers)
        else:
            self._send_json(404, {"error": f"no job endpoint {sub!r}"})

    # ---- POST routes --------------------------------------------------

    def _route_post(self, server: "ReproServer", path: str) -> None:
        if path == "/v1/jobs":
            self._route = path
            self._post_job(server)
        elif path == "/v1/shutdown":
            self._route = path
            self._send_json(200, {"ok": True, "stopping": True})
            threading.Thread(target=server.stop, daemon=True).start()
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def _post_job(self, server: "ReproServer") -> None:
        body = self._read_body()
        if body is None or not isinstance(body.get("analysis"), str):
            self._send_json(400, {"error": "body must be JSON with "
                                           "an 'analysis' name"})
            return
        argv = body.get("argv") or []
        if not (isinstance(argv, list)
                and all(isinstance(a, str) for a in argv)):
            self._send_json(400,
                            {"error": "'argv' must be a string list"})
            return
        try:
            accepted = server.jobs.submit(
                body["analysis"], argv,
                reuse=bool(body.get("reuse", True)))
        except KeyError:
            self._send_json(404, {"error": "unknown analysis "
                                           f"{body['analysis']!r}"})
            return
        except QueueFull as exc:
            self._send_json(429, {"error": str(exc)},
                            headers={"Retry-After": "1"})
            return
        wait = body.get("wait")
        if wait:
            # long-poll submit: block (cheaply, on the job's done
            # event) and answer with the full result document in
            # this same round trip -- the warm-path fast lane
            job = server.jobs.get(accepted["job"])
            if job is not None:
                job.done.wait(min(float(wait), 300.0))
                if job.state == "done":
                    self._send_json(200, self._result_doc(job),
                                    headers={"ETag":
                                             f'"{job.etag}"'})
                    return
                self._send_json(200 if job.state == "failed"
                                else 202, job.status())
                return
        self._send_json(202, accepted)


class ReproServer:
    """One serve daemon: HTTP front end + job queue + session manager.

    *manager* is the shared :class:`~repro.session.SessionManager`;
    *workers*/*queue_size* shape the job queue; *idle_reap_s* closes
    sessions idle past that many seconds between requests (0 disables
    reaping).  Port 0 binds an ephemeral port (tests); read it back
    from :attr:`port` after construction.

    *ledger* is the :class:`~repro.obs.ledger.RunLedger` finished jobs
    record to and ``/v1/runs`` reads from; by default it opens from
    ``$REPRO_LEDGER_DIR`` (disabled when unset, in which case
    ``/v1/runs`` answers ``{"enabled": false}``).  *baseline* pins a
    run reference the dashboard diffs every listed run against; without
    it each run is compared to the **earliest recorded run with the
    same config digest** -- the natural "did this exact request
    regress" question.
    """

    def __init__(self, manager, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, queue_size: int = 16,
                 idle_reap_s: float = 300.0, ledger=None,
                 baseline: Optional[str] = None) -> None:
        self.manager = manager
        self.ledger = ledger if ledger is not None else open_ledger()
        self.baseline = baseline
        self.jobs = JobQueue(manager, workers=workers,
                             queue_size=queue_size, ledger=self.ledger)
        self.idle_reap_s = idle_reap_s
        #: always-on request telemetry, independent of global obs --
        #: /metrics and /dashboard never come up empty
        self.telemetry = Collector()
        self._recent_ms: "deque[float]" = deque(maxlen=120)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._httpd.jobs = self.jobs  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._reaper: Optional[threading.Timer] = None
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()

    @property
    def host(self) -> str:
        """The bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The service base URL."""
        return f"http://{self.host}:{self.port}"

    def analyses(self) -> list:
        """The registry as ``[{"name", "help"}, ...]``."""
        from repro.session.registry import all_analyses

        return [{"name": a.name, "help": a.help} for a in all_analyses()]

    # ---- telemetry ----------------------------------------------------

    def record_request(self, route: str, code: int, elapsed_ms: float,
                       resp_bytes: int) -> None:
        """Fold one handled request into the telemetry registries.

        Lands only on :attr:`telemetry` while serving -- ``/metrics``
        merges telemetry with the global collector at scrape time, so
        recording into both would double-count.  :meth:`stop` folds the
        whole telemetry registry into the global collector once, which
        is how request latency reaches the post-serve ``--metrics``
        table.
        """
        latency = encode_labels("serve.request_ms",
                                route=route, code=code)
        size = encode_labels("serve.response_bytes",
                             route=route, code=code)
        self.telemetry.count("serve.request.handled")
        self.telemetry.observe(latency, elapsed_ms)
        self.telemetry.observe(size, resp_bytes)
        self._recent_ms.append(elapsed_ms)

    def metrics_text(self) -> str:
        """The ``GET /metrics`` exposition document.

        Merges the daemon's private telemetry with the global obs
        collector (when enabled): counters sum, histograms fold, so one
        scrape sees both the HTTP plane and the analysis pipeline.
        """
        return render_prometheus((self.telemetry, obs.collector()))

    def telemetry_routes(self) -> List[Dict[str, Any]]:
        """Per-``{route, code}`` request latency summaries, sorted."""
        with self.telemetry._lock:
            snap = {name: list(h) for name, h
                    in self.telemetry.histograms.items()}
        routes = []
        for name in sorted(snap):
            base, labels = parse_labeled(name)
            if base != "serve.request_ms":
                continue
            count, total, _lo, hi = snap[name]
            routes.append({"route": labels.get("route", ""),
                           "code": labels.get("code", ""),
                           "count": int(count),
                           "total_ms": total,
                           "max_ms": hi})
        return routes

    def trace_json(self, job) -> str:
        """The ``GET /v1/jobs/<id>/trace`` document (Chrome trace).

        A settled job serves the slice cut out of the collector when it
        finished; a queued/running one serves a live snapshot (without
        removing anything).  With obs disabled the document is valid
        but empty -- the trace plane degrades, never errors.
        """
        records = job.trace_spans
        if records is None:
            collector = obs.collector()
            records = ([] if collector is None or not job.trace_id
                       else collector.take_trace(job.trace_id,
                                                 remove=False))
        return tracefile.dumps_records(
            records, os.getpid(),
            other={"job": job.id, "analysis": job.analysis,
                   "trace_id": job.trace_id, "state": job.state,
                   "spans": len(records)},
            process_name=f"repro-serve job {job.id} ({job.analysis})")

    def stats(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` document."""
        cache = self.manager.cache
        return {
            "queue_depth": self.jobs.depth(),
            "queue_size": self.jobs.queue_size,
            "jobs_done": self.jobs.jobs_done,
            "jobs_failed": self.jobs.jobs_failed,
            "sessions_active": len(self.manager.active()),
            "requests_handled": int(
                self.telemetry.counters.get("serve.request.handled", 0)),
            "ledger_enabled": bool(self.ledger.enabled),
            "cache": {
                "enabled": cache.enabled,
                "hits": cache.hits,
                "misses": cache.misses,
                "stores": cache.stores,
                "evictions": cache.evictions,
                "quarantined": cache.quarantined,
            },
        }

    def dashboard_doc(self, n_runs: int = 10) -> Dict[str, Any]:
        """The snapshot document ``GET /dashboard`` renders.

        Pure data (JSON-shaped) so tests can assert on it without
        scraping HTML.  The last *n_runs* recorded runs each carry a
        regression verdict against the pinned *baseline* run, or --
        when none is pinned -- against the earliest recorded run
        sharing their config digest.
        """
        doc: Dict[str, Any] = {
            "url": self.url,
            "stats": self.stats(),
            "telemetry": {"routes": self.telemetry_routes(),
                          "samples_ms": list(self._recent_ms)},
            "baseline": self.baseline,
            "runs": [],
        }
        if not self.ledger.enabled:
            return doc
        try:
            entries = [e for e in self.ledger.refresh_index()
                       if not e.get("skip")]
        except (LedgerError, OSError):
            return doc
        pinned = None
        if self.baseline:
            try:
                pinned = self.ledger.get(self.baseline)
            except (LedgerError, OSError):
                pinned = None
        first_by_cfg: Dict[str, Dict[str, Any]] = {}
        for entry in entries:
            first_by_cfg.setdefault(entry.get("cfg"), entry)
        loaded: Dict[int, Dict[str, Any]] = {}

        def load(entry: Dict[str, Any]) -> Optional[Dict[str, Any]]:
            if entry["o"] not in loaded:
                try:
                    loaded[entry["o"]] = self.ledger.read_at(
                        entry["o"], entry["l"])
                except (LedgerError, OSError):
                    return None
            return loaded[entry["o"]]

        for entry in reversed(entries[-max(0, n_runs):]):
            manifest = load(entry)
            if manifest is None:
                continue
            row = run_summary(manifest)
            base = pinned
            if base is None:
                first = first_by_cfg.get(entry.get("cfg"))
                if first is not None and first["o"] != entry["o"]:
                    base = load(first)
            if base is not None \
                    and base["meta"]["run_id"] != row["run_id"]:
                diff = diff_manifests(base, manifest)
                base_row = run_summary(base)
                row["baseline_run_id"] = base_row["run_id"]
                row["baseline_regressions"] = len(diff.regressions)
                row["baseline_wall_delta_ms"] = round(
                    row["wall_ms"] - base_row["wall_ms"], 3)
            doc["runs"].append(row)
        return doc

    # ---- lifecycle ----------------------------------------------------

    def _reap_tick(self) -> None:
        if self._stopped.is_set() or not self.idle_reap_s:
            return
        self.manager.reap(self.idle_reap_s)
        self._reaper = threading.Timer(
            max(1.0, self.idle_reap_s / 4), self._reap_tick)
        self._reaper.daemon = True
        self._reaper.start()

    def start(self) -> None:
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http",
            kwargs={"poll_interval": 0.05}, daemon=True)
        self._thread.start()
        if self.idle_reap_s:
            self._reap_tick()
        obs.count("serve.start")

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or Ctrl-C)."""
        if self.idle_reap_s:
            self._reap_tick()
        obs.count("serve.start")
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut down: stop accepting, drain workers, close sessions."""
        with self._stop_lock:
            if self._stopped.is_set():
                return
            self._stopped.set()
        if self._reaper is not None:
            self._reaper.cancel()
        self._httpd.shutdown()
        self._httpd.server_close()
        self.jobs.shutdown()
        self.manager.close_all()
        # hand the request telemetry to the global collector (when one
        # is active) so the post-serve --metrics table and trace carry
        # the HTTP plane too; drained so nothing can double-count
        active = obs.collector()
        if active is not None:
            active.absorb(self.telemetry.export_spans(drain=True))
        if self._thread is not None:
            self._thread.join(timeout=10)
