"""The registered ``serve`` subcommand: boot the analysis daemon.

``repro serve`` goes through the same declarative registry as every
other subcommand, so the CLI tree, ``--help`` and the registry
completeness tests all see it uniformly.  Two modes:

- the default serves in the foreground until Ctrl-C or a
  ``POST /v1/shutdown``;
- ``--smoke`` boots on an ephemeral port, runs one self-request cycle
  through :class:`~repro.serve.client.ServeClient` (health, registry
  listing, one cheap job end to end) and shuts down -- the
  self-terminating mode the registry smoke test and CI boot gates use.

The daemon itself never records to the run ledger (``ledger_record =
False``): it is infrastructure, not an analysis result.  Jobs executed
*through* it build ordinary run manifests -- that is where their ETag
digests come from -- and when a ledger is configured (the global
``--ledger-dir`` flag or ``$REPRO_LEDGER_DIR``) every finished job's
manifest is appended to it, which is what ``GET /v1/runs`` lists.

The daemon asks the CLI for a collector (``wants_collector``) so the
telemetry plane -- per-job traces, ``/metrics`` pipeline series --
works out of the box without ``--trace``/``--metrics`` flags.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.core.serialize import SerializableResult, register_serializable
from repro.session.registry import Analysis, Arg, register


@register_serializable
@dataclass
class ServeResult(SerializableResult):
    """One ``repro serve`` lifetime: where it ran and what it did."""

    host: str
    port: int
    workers: int
    queue_size: int
    jobs_done: int
    jobs_failed: int
    smoke: bool
    #: the smoke cycle's end-to-end job ETag (None in foreground mode)
    smoke_etag: Optional[str] = None
    #: whether the daemon recorded finished jobs to a run ledger
    ledger_enabled: bool = False
    #: runs listed by /v1/runs during the smoke cycle (None outside it)
    smoke_runs: Optional[int] = None


@register
class ServeAnalysis(Analysis):
    """``serve``: the registry over HTTP/JSON (docs/SERVING.md)."""

    name = "serve"
    help = "serve the analysis registry over HTTP/JSON (daemon)"
    workload_arg = False
    ledger_record = False  # infrastructure run, not an analysis result
    wants_collector = True  # traces + /metrics without extra flags
    result_type = ServeResult

    extra_args = (
        Arg("--host", default="127.0.0.1",
            help="interface to bind (default: 127.0.0.1)"),
        Arg("--port", type=int, default=8377,
            help="port to bind; 0 picks an ephemeral port "
                 "(default: 8377)"),
        Arg("--workers", type=int, default=2,
            help="job worker threads (default: 2; 0 accepts but never "
                 "executes -- test mode)"),
        Arg("--queue-size", type=int, default=16, dest="queue_size",
            help="max accepted-but-unstarted jobs before the daemon "
                 "answers 429 (default: 16)"),
        Arg("--idle-reap-s", type=float, default=300.0,
            dest="idle_reap_s",
            help="close sessions idle this many seconds "
                 "(default: 300; 0 disables)"),
        Arg("--cache-dir", metavar="DIR", default=None,
            help="shared artifact cache directory "
                 "(default: $REPRO_CACHE_DIR)"),
        Arg("--no-cache", action="store_true",
            help="serve without a shared artifact cache"),
        Arg("--baseline", metavar="REF", default=None,
            help="pin the dashboard's regression baseline to this "
                 "recorded run (default: earliest run with the same "
                 "config digest)"),
        Arg("--smoke", action="store_true",
            help="boot, run one self-request cycle, shut down "
                 "(CI/test mode)"),
        Arg("--json", action="store_true",
            help="render the post-serve summary as JSON instead of "
                 "text (scripting/CI)"),
    )

    def run(self, session, args: argparse.Namespace) -> ServeResult:
        """Boot the daemon (foreground, or one --smoke cycle)."""
        from repro.obs.ledger import open_ledger
        from repro.serve.server import ReproServer
        from repro.session.lifecycle import SessionManager

        manager = SessionManager(cache_dir=args.cache_dir,
                                 no_cache=args.no_cache)
        # same resolution as the CLI's own recording: explicit dir >
        # $REPRO_LEDGER_DIR > disabled; --no-ledger wins over both
        ledger = open_ledger(getattr(args, "ledger_dir", None),
                             disabled=getattr(args, "no_ledger", False))
        server = ReproServer(manager, host=args.host, port=args.port,
                             workers=args.workers,
                             queue_size=args.queue_size,
                             idle_reap_s=args.idle_reap_s,
                             ledger=ledger, baseline=args.baseline)
        if args.smoke:
            return self._smoke(server, args)
        print(f"repro serve listening on {server.url} "
              f"({args.workers} worker(s), queue {args.queue_size}, "
              f"ledger {'on' if ledger.enabled else 'off'})")
        server.serve_forever()
        return self._result(server, args, smoke=False)

    def _smoke(self, server, args: argparse.Namespace) -> ServeResult:
        """One self-request cycle: health, listing, job, telemetry."""
        from repro.serve.client import ServeClient

        server.start()
        try:
            client = ServeClient(server.url, timeout=10.0)
            assert client.health(), "daemon failed its health check"
            names = {entry["name"] for entry in client.analyses()}
            assert self.name in names, "registry listing is incomplete"
            doc = client.run("workloads", [], timeout=30.0)
            etag = doc["etag"]
            exposition = client.metrics()
            assert "repro_serve_request_ms_count" in exposition, \
                "metrics exposition is missing request telemetry"
            assert "<html" in client.dashboard().lower(), \
                "dashboard endpoint did not answer HTML"
            runs = None
            if server.ledger.enabled:
                runs = int(client.runs()["total"])
                assert runs >= 1, "finished job missing from /v1/runs"
        finally:
            server.stop()
        return self._result(server, args, smoke=True, smoke_etag=etag,
                            smoke_runs=runs)

    def _result(self, server, args: argparse.Namespace, smoke: bool,
                smoke_etag: Optional[str] = None,
                smoke_runs: Optional[int] = None) -> ServeResult:
        return ServeResult(host=server.host, port=server.port,
                           workers=args.workers,
                           queue_size=args.queue_size,
                           jobs_done=server.jobs.jobs_done,
                           jobs_failed=server.jobs.jobs_failed,
                           smoke=smoke, smoke_etag=smoke_etag,
                           ledger_enabled=bool(server.ledger.enabled),
                           smoke_runs=smoke_runs)

    def render(self, result: ServeResult,
               args: argparse.Namespace) -> str:
        """The post-serve summary line(s) (or JSON with ``--json``)."""
        if getattr(args, "json", False):
            return result.to_json()
        lines = [f"== repro serve @ {result.host}:{result.port} "
                 f"({result.workers} worker(s), "
                 f"queue {result.queue_size}) ==",
                 f"jobs: {result.jobs_done} done, "
                 f"{result.jobs_failed} failed, ledger "
                 f"{'on' if result.ledger_enabled else 'off'}"]
        if result.smoke:
            lines.append(f"smoke cycle ok, result etag "
                         f"{(result.smoke_etag or '')[:16]}")
            if result.smoke_runs is not None:
                lines.append(f"ledger lists {result.smoke_runs} run(s)")
        return "\n".join(lines)
