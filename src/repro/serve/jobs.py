"""The serve daemon's bounded async job queue.

A :class:`JobQueue` accepts analysis requests (registry name + argv),
coalesces identical in-flight work by request key, and executes each
job on a small pool of worker threads.  Every worker builds a fresh
:class:`~repro.session.AnalysisSession` through the shared
:class:`~repro.session.SessionManager` -- per-request memo state,
shared warm artifact cache -- runs the registered analysis, and
publishes:

- the rendered text and the typed result's JSON;
- the run manifest (:func:`~repro.obs.ledger.build_manifest`);
- an **ETag** digest over the manifest's
  :func:`~repro.obs.ledger.stable_view` minus the ``counters`` section
  (counters differ between a cold and a warm run of the same request;
  everything else is the determinism contract, so two identical
  requests must produce equal ETags);
- progress lines, one per obs span finished on the job's worker
  thread (streamed by the server's progress endpoint).

Backpressure is structural: the submit queue is a bounded
``queue.Queue`` and :meth:`JobQueue.submit` raises :class:`QueueFull`
(the HTTP layer answers 429) instead of buffering unbounded work.

Every job is minted a **trace id** at submit time.  While the job
runs, its worker thread tags every span it finishes (and every span it
absorbs from pipeline pool workers) with that id via
:meth:`~repro.obs.core.Collector.set_trace`; when it settles, the
job's slice is cut out of the daemon's long-lived collector with
:meth:`~repro.obs.core.Collector.take_trace` -- bounding the
collector's memory to in-flight work -- and served back by the
``GET /v1/jobs/<id>/trace`` endpoint as a standalone Chrome trace.

When the queue was built with a *ledger*, every finished job's
manifest is appended to it, which is what makes ``GET /v1/runs``
queryable across daemon restarts.  Recording is best effort: a ledger
write failure never fails the job that produced the result.

Obs counters: ``serve.request``, ``serve.request.rejected``,
``serve.job.coalesced``, ``serve.job.done``, ``serve.job.failed``,
``serve.job.recorded``.
"""

from __future__ import annotations

import argparse
import hashlib
import io
import json
import os
import queue
import threading
import time
from contextlib import redirect_stderr
from typing import Any, Dict, List, Optional

import repro.obs as obs

__all__ = ["Job", "JobQueue", "QueueFull", "request_key", "result_etag"]


class QueueFull(Exception):
    """Raised by :meth:`JobQueue.submit` when the queue is at capacity."""


def request_key(name: str, argv: List[str]) -> str:
    """The coalescing key of one request: analysis name + exact argv."""
    blob = json.dumps([name, list(argv)], separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def result_etag(manifest: Dict[str, Any]) -> str:
    """The reproducibility digest of one finished job.

    Taken over the ledger's stable view *minus counters*: counters are
    deterministic for a fixed cache state but differ between the cold
    and warm executions of the same request, and the serve contract is
    that identical requests -- whenever they run -- carry equal ETags
    exactly when their results are bit-identical.
    """
    from repro.obs.ledger import stable_view

    view = dict(stable_view(manifest))
    view.pop("counters", None)
    blob = json.dumps(view, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class Job:
    """One submitted analysis request and (eventually) its result."""

    __slots__ = ("id", "key", "analysis", "argv", "state", "error",
                 "rendered", "result_json", "manifest", "etag",
                 "progress", "created_s", "wall_ms", "done",
                 "trace_id", "trace_spans", "_progress_lock")

    def __init__(self, job_id: str, key: str, analysis: str,
                 argv: List[str]) -> None:
        self.id = job_id
        self.key = key
        self.analysis = analysis
        self.argv = list(argv)
        self.state = "queued"  # queued | running | done | failed
        self.error: Optional[str] = None
        self.rendered: Optional[str] = None
        self.result_json: Optional[str] = None
        self.manifest: Optional[Dict[str, Any]] = None
        self.etag: Optional[str] = None
        self.progress: List[str] = []
        self.created_s = time.time()
        self.wall_ms = 0.0
        self.done = threading.Event()
        self.trace_id: Optional[str] = None
        #: the job's span slice, cut from the collector when it settles
        #: (None while queued/running -- the trace endpoint serves a
        #: live snapshot instead)
        self.trace_spans: Optional[list] = None
        self._progress_lock = threading.Lock()

    def add_progress(self, line: str) -> None:
        """Append one progress line (thread-safe)."""
        with self._progress_lock:
            self.progress.append(line)

    def progress_lines(self) -> List[str]:
        """A snapshot of the progress lines so far."""
        with self._progress_lock:
            return list(self.progress)

    def status(self) -> Dict[str, Any]:
        """The job's status document (the ``GET /v1/jobs/<id>`` body)."""
        doc: Dict[str, Any] = {
            "job": self.id,
            "analysis": self.analysis,
            "state": self.state,
            "trace": self.trace_id,
            "progress_lines": len(self.progress),
        }
        if self.state == "done":
            doc["etag"] = self.etag
            doc["wall_ms"] = round(self.wall_ms, 3)
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """Bounded queue + worker pool executing registered analyses.

    *manager* is the :class:`~repro.session.SessionManager` whose
    shared cache every job's session warms; *workers* threads drain the
    queue (0 keeps jobs queued forever -- the deterministic-429 test
    mode); *queue_size* bounds accepted-but-unstarted work; *history*
    bounds how many finished jobs stay addressable.
    """

    def __init__(self, manager, workers: int = 2, queue_size: int = 16,
                 history: int = 256, ledger=None) -> None:
        self.manager = manager
        self.queue_size = queue_size
        #: optional RunLedger; finished jobs' manifests are appended to
        #: it (best effort) so /v1/runs can list them
        self.ledger = ledger
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=max(1, queue_size))
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}       # id -> job
        self._inflight: Dict[str, Job] = {}   # request key -> live job
        self._next_id = 0
        self._history = history
        self.jobs_done = 0
        self.jobs_failed = 0
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)]
        for thread in self._workers:
            thread.start()

    # ---- submission ---------------------------------------------------

    def submit(self, analysis: str, argv: List[str],
               reuse: bool = True) -> Dict[str, Any]:
        """Accept one request; returns ``{"job", "state", "coalesced"}``.

        With *reuse* (the default), a request identical to one already
        queued, running, or finished is coalesced onto that job instead
        of executing again -- the warm path concurrent sweeps rely on.
        Raises :class:`QueueFull` when the queue is at capacity and
        :class:`KeyError` when *analysis* is not a registered name.
        """
        from repro.session.registry import REGISTRY

        obs.count("serve.request")
        if analysis not in REGISTRY:
            raise KeyError(analysis)
        key = request_key(analysis, argv)
        with self._lock:
            if reuse:
                live = self._inflight.get(key)
                if live is not None:
                    obs.count("serve.job.coalesced")
                    return {"job": live.id, "state": live.state,
                            "trace": live.trace_id, "coalesced": True}
            self._next_id += 1
            job = Job(f"j{self._next_id:06d}", key, analysis, argv)
            job.trace_id = hashlib.sha256(
                f"{os.getpid()}:{job.id}:{time.time_ns()}"
                .encode("utf-8")).hexdigest()[:16]
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._next_id -= 1
                obs.count("serve.request.rejected")
                raise QueueFull(
                    f"job queue full ({self.queue_size} pending)")
            self._jobs[job.id] = job
            self._inflight[key] = job
            self._trim_history()
        return {"job": job.id, "state": job.state,
                "trace": job.trace_id, "coalesced": False}

    def get(self, job_id: str) -> Optional[Job]:
        """The job called *job_id*, or None when unknown/expired."""
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        """How many accepted jobs have not started executing yet."""
        return self._queue.qsize()

    def _trim_history(self) -> None:
        # caller holds the lock; drop the oldest finished jobs
        while len(self._jobs) > self._history:
            for job_id, job in list(self._jobs.items()):
                if job.state in ("done", "failed"):
                    del self._jobs[job_id]
                    break
            else:
                return

    # ---- execution ----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                return
            try:
                self._execute(job)
            finally:
                with self._lock:
                    if self._inflight.get(job.key) is job \
                            and job.state in ("done", "failed"):
                        # finished jobs stay reusable via _jobs; only
                        # failed ones stop absorbing new submissions
                        if job.state == "failed":
                            del self._inflight[job.key]
                self._queue.task_done()

    def _build_args(self, analysis, argv: List[str]) -> argparse.Namespace:
        """Parse *argv* with the analysis's own declared parser.

        argparse answers bad requests with ``SystemExit``; the caller
        maps that to HTTP 400.  Its usage text goes to stderr, which is
        redirected into the raised error so daemon logs stay clean.
        """
        parser = argparse.ArgumentParser(prog=analysis.name,
                                         add_help=False)
        analysis.configure(parser)
        buf = io.StringIO()
        try:
            with redirect_stderr(buf):
                return parser.parse_args(argv)
        except SystemExit:
            detail = buf.getvalue().strip().splitlines()
            raise ValueError(detail[-1] if detail else "bad arguments")

    def _execute(self, job: Job) -> None:
        """Run one job on this worker thread, start to finish."""
        from repro.obs.ledger import build_manifest
        from repro.session.registry import REGISTRY

        job.state = "running"
        collector = obs.collector()
        listener = None
        if collector is not None:
            me = threading.get_ident()

            def listener(record, _job=job, _me=me):
                name, _ts, dur, tid = record[0], record[1], record[2], \
                    record[3]
                if tid == _me:
                    _job.add_progress(f"{name} {dur / 1000.0:.1f}ms")

            collector.add_listener(listener)
            collector.set_trace(job.trace_id)
        t0 = time.perf_counter()
        try:
            with obs.span("serve.job", analysis=job.analysis):
                analysis = REGISTRY[job.analysis]
                args = self._build_args(analysis, job.argv)
                # validates the workload name exactly like the CLI...
                probe = analysis.make_session(args)
                # ...then reopens the session through the manager, so
                # it runs over the *shared* cache and is reap-tracked
                session = self.manager.open(probe.run)
                try:
                    result = analysis.run(session, args)
                    wall_s = time.perf_counter() - t0
                    job.manifest = build_manifest(
                        job.analysis, session, result,
                        collector=obs.collector(), wall_s=wall_s)
                    job.etag = result_etag(job.manifest)
                    job.rendered = analysis.render(result, args)
                    job.result_json = result.to_json()
                finally:
                    self.manager.close(session)
            job.wall_ms = (time.perf_counter() - t0) * 1000.0
            job.state = "done"
            self.jobs_done += 1
            obs.count("serve.job.done")
            self._record(job)
        except (Exception, SystemExit) as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            self.jobs_failed += 1
            obs.count("serve.job.failed")
        finally:
            if collector is not None:
                if listener is not None:
                    collector.remove_listener(listener)
                collector.set_trace(None)
                # cut the job's slice out of the daemon's long-lived
                # collector: serves /v1/jobs/<id>/trace and keeps the
                # span list bounded by in-flight work
                job.trace_spans = collector.take_trace(job.trace_id)
            job.done.set()

    def _record(self, job: Job) -> None:
        """Append the finished job's manifest to the run ledger.

        Best effort by contract: the job already succeeded, so a full
        disk or a permission error on the ledger directory must not
        retroactively fail it.
        """
        ledger = self.ledger
        if ledger is None or not ledger.enabled or job.manifest is None:
            return
        try:
            ledger.append(job.manifest)
            obs.count("serve.job.recorded")
        except Exception as exc:  # noqa: BLE001 -- recording is optional
            obs.get_logger("serve").warning(
                "could not record job %s to the ledger: %s", job.id, exc)

    def shutdown(self) -> None:
        """Stop the workers after the current jobs finish."""
        for _ in self._workers:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=10)
