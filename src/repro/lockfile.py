"""Advisory file locking for on-demand native kernel compiles.

Both compile-with-fallback caches (:mod:`repro.graph.engine` and
:mod:`repro.uarch.fastcore`) build a shared library in the system temp
directory the first time a process asks for the kernel.  Two processes
(or threads) racing that first compile used to clobber each other's
in-flight ``cc`` output; :func:`compile_lock` serializes them with an
advisory ``flock`` on a sidecar ``<lib>.lock`` file:

- the winner compiles while holding the exclusive lock;
- losers block, print a one-line stderr note (so an unexpectedly slow
  import is explainable), and on waking typically find the finished
  ``.so`` already published -- the compile sites re-check existence
  under the lock, so the work happens once per host.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op:
the tmp-file + ``os.replace`` publish the compile sites already use
keeps clobbering from corrupting a *published* library there; only the
duplicate-work protection is lost.
"""

from __future__ import annotations

import contextlib
import os
import sys
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["CONTENTION_NOTE", "compile_lock"]

#: The stderr line printed when a compile waits on a concurrent one
#: (``{what}``/``{path}`` filled in; tests pin this text).
CONTENTION_NOTE = ("note: waiting for a concurrent {what} compile "
                   "({path})")


@contextlib.contextmanager
def compile_lock(lib_path: str, what: str = "native kernel"
                 ) -> Iterator[bool]:
    """Hold an advisory exclusive lock around one kernel compile.

    *lib_path* is the library being produced (the lock lives next to it
    as ``<lib_path>.lock``); *what* names the kernel in the contention
    note.  Yields ``True`` when the lock was contended (this process
    waited for another compiler), ``False`` when it was acquired
    immediately or locking is unavailable on this platform.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield False
        return
    lock_path = lib_path + ".lock"
    try:
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:  # pragma: no cover - unwritable temp dir
        yield False
        return
    waited = False
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            waited = True
            print(CONTENTION_NOTE.format(what=what, path=lib_path),
                  file=sys.stderr)
            fcntl.flock(fd, fcntl.LOCK_EX)
        yield waited
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
