"""Longest-path computation and critical-path extraction.

Node-index order is topological (see :mod:`repro.graph.model`), so the
longest path is a single forward DP sweep.  ``critical_path_edges``
backtracks one critical path for inspection; ``edge_kind_profile``
attributes its length to edge kinds, the classic criticality view the
paper builds on (Fields et al. [11, 12], Tune et al. [37]).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.model import DependenceGraph, Edge, EdgeKind


def longest_path(graph: DependenceGraph,
                 lat: Optional[Sequence[int]] = None,
                 seed: Optional[int] = None) -> List[int]:
    """Earliest time of every node under max-plus semantics.

    *lat* optionally overrides per-edge latencies (an idealized view);
    entries below a large negative threshold mark removed edges.
    Nodes with no (surviving) incoming edges start at time zero, except
    node 0, which starts at *seed* (the graph's recorded seed when not
    given) -- instruction 0's cold-start fetch delay.
    """
    latencies = graph.edge_lat if lat is None else lat
    src = graph.edge_src
    start = graph.csr_start
    dist = [0] * graph.num_nodes
    if graph.num_nodes:
        dist[0] = graph.seed_lat if seed is None else seed
    for v in range(1, graph.num_nodes):
        best = 0
        for e in range(start[v], start[v + 1]):
            d = dist[src[e]] + latencies[e]
            if d > best:
                best = d
        dist[v] = best
    return dist


def critical_path_length(graph: DependenceGraph,
                         lat: Optional[Sequence[int]] = None) -> int:
    """Length of the longest path (the critical path) in cycles."""
    if graph.num_nodes == 0:
        return 0
    dist = longest_path(graph, lat)
    return max(dist)


def critical_path_edges(graph: DependenceGraph,
                        lat: Optional[Sequence[int]] = None) -> List[Edge]:
    """One critical path, as a source-to-sink list of edges.

    Ties are broken toward the lowest edge index, making the result
    deterministic.
    """
    if graph.num_nodes == 0:
        return []
    latencies = graph.edge_lat if lat is None else lat
    dist = longest_path(graph, latencies)
    src = graph.edge_src
    start = graph.csr_start
    # walk back from the sink with the maximal time
    v = max(range(graph.num_nodes), key=lambda node: dist[node])
    path: List[Edge] = []
    while dist[v] > 0:
        chosen = None
        for e in range(start[v], start[v + 1]):
            if dist[src[e]] + latencies[e] == dist[v]:
                chosen = e
                break
        if chosen is None:  # node started at 0 with no binding edge
            break
        path.append(graph.edge(chosen, dst=v))
        v = src[chosen]
    path.reverse()
    return path


def edge_kind_profile(graph: DependenceGraph,
                      lat: Optional[Sequence[int]] = None) -> Dict[EdgeKind, int]:
    """Cycles of one critical path attributed to each edge kind."""
    profile: Dict[EdgeKind, int] = {}
    latencies = graph.edge_lat if lat is None else lat
    for edge in critical_path_edges(graph, latencies):
        profile[edge.kind] = profile.get(edge.kind, 0) + edge.latency
    return profile
