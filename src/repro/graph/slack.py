"""Slack and per-instruction costs: the criticality toolkit.

The paper builds on the criticality/slack line of work (Fields et al.
[11, 12], Tune et al. [37]) and positions icost as the answer to
"which *nearly*-critical dependences should I optimize along with the
critical ones?".  This module supplies that surrounding toolkit:

- **edge slack** -- how many cycles an edge's latency can grow before
  the critical path lengthens (zero on critical edges); computed from
  the forward and backward longest-path sweeps;
- **per-instruction cost** -- the cycles saved by idealizing every
  event of one dynamic instruction (its execution latency, misses and
  mispredict), i.e. the Tune-et-al. instruction criticality measure
  expressed through the same EventSelection machinery the icost engine
  uses -- so instruction costs and icosts compose.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.categories import Category, EventSelection
from repro.graph.cost import GraphCostAnalyzer
from repro.graph.critical_path import longest_path
from repro.graph.model import DependenceGraph, NODES_PER_INST

#: The per-instruction event categories (WIN and BW are whole-machine
#: constraints with no per-instruction meaning).
INSTRUCTION_CATEGORIES = (
    Category.DL1, Category.DMISS, Category.SHALU, Category.LGALU,
    Category.BMISP, Category.IMISS,
)


def backward_longest_path(graph: DependenceGraph,
                          lat: Optional[Sequence[int]] = None) -> List[int]:
    """Longest path from each node to the sink, under max-plus semantics."""
    latencies = graph.edge_lat if lat is None else lat
    src = graph.edge_src
    start = graph.csr_start
    back = [0] * graph.num_nodes
    for v in range(graph.num_nodes - 1, -1, -1):
        bv = back[v]
        for e in range(start[v], start[v + 1]):
            candidate = bv + latencies[e]
            s = src[e]
            if candidate > back[s]:
                back[s] = candidate
    return back


def edge_slacks(graph: DependenceGraph,
                lat: Optional[Sequence[int]] = None) -> List[int]:
    """Per-edge slack: extra latency each edge tolerates for free.

    ``slack(e) = CP - (dist[src] + latency + back[dst])``; critical
    edges have slack zero.  This is the *local* slack of Fields et al.
    [11] computed post-mortem.
    """
    latencies = graph.edge_lat if lat is None else lat
    dist = longest_path(graph, latencies)
    back = backward_longest_path(graph, latencies)
    cp = max(dist) if dist else 0
    slacks = []
    edge_index = 0
    for dst in range(graph.num_nodes):
        for e in range(graph.csr_start[dst], graph.csr_start[dst + 1]):
            slacks.append(cp - (dist[graph.edge_src[e]] + latencies[e]
                                + back[dst]))
            edge_index += 1
    return slacks


def critical_edge_fraction(graph: DependenceGraph) -> float:
    """Fraction of edges with zero slack (on *some* critical path)."""
    slacks = edge_slacks(graph)
    if not slacks:
        return 0.0
    return sum(1 for s in slacks if s == 0) / len(slacks)


def instruction_slack(graph: DependenceGraph, seq: int) -> int:
    """Minimum slack over an instruction's incoming edges.

    Zero means the instruction lies on a critical path; large values
    mark instructions whose latency could grow without any performance
    effect -- the paper's 'targets for de-optimization'.
    """
    slacks = edge_slacks(graph)
    best = None
    lo = seq * NODES_PER_INST
    hi = lo + NODES_PER_INST
    edge_index = 0
    for dst in range(graph.num_nodes):
        for __ in range(graph.csr_start[dst], graph.csr_start[dst + 1]):
            if lo <= dst < hi:
                if best is None or slacks[edge_index] < best:
                    best = slacks[edge_index]
            edge_index += 1
    return 0 if best is None else best


def instruction_events(seq: int) -> List[EventSelection]:
    """The per-instruction event selections covering instruction *seq*."""
    chosen = frozenset((seq,))
    return [EventSelection(cat, chosen, name=f"{cat.value}@{seq}")
            for cat in INSTRUCTION_CATEGORIES]


def instruction_cost(analyzer: GraphCostAnalyzer, seq: int) -> float:
    """Cost of one dynamic instruction: idealize all of its events.

    Equals zero for instructions off the critical path -- including one
    of two parallel cache misses, which is exactly the blind spot
    icost exists to illuminate (pass two instructions' selections to
    ``analyzer.cost`` jointly to see their interaction).
    """
    return analyzer.cost(instruction_events(seq))


def instruction_icost(analyzer: GraphCostAnalyzer, seq_a: int,
                      seq_b: int) -> float:
    """Interaction cost between two dynamic instructions' event sets."""
    a = frozenset(instruction_events(seq_a))
    b = frozenset(instruction_events(seq_b))
    return (analyzer.cost(a | b) - analyzer.cost(a) - analyzer.cost(b))


def top_critical_instructions(analyzer: GraphCostAnalyzer,
                              candidates: Iterable[int],
                              top: int = 10) -> List[tuple]:
    """(seq, cost) of the most costly instructions among *candidates*."""
    costs = [(seq, instruction_cost(analyzer, seq)) for seq in candidates]
    costs.sort(key=lambda pair: -pair[1])
    return costs[:top]
