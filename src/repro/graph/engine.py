"""Batched cost engines: fast, exact longest-path measurement.

An interaction-cost breakdown over *n* event groups needs ``2^n - 1``
cost measurements (Section 2.3), and each one is a full longest-path
sweep of the dependence graph.  This module provides three
interchangeable engines behind one small interface, all bit-identical
to the naive sweep of :func:`repro.graph.critical_path.longest_path`
(the differential harness in ``tests/test_engine_differential.py``
enforces that):

``naive``
    The reference oracle: one pure-Python CSR sweep per measurement,
    exactly the code path the rest of the test suite has always pinned.

``batched``
    A vectorized CSR kernel plus *incremental* recomputation.  The
    sweep runs in a tiny C routine compiled on demand with the system
    C compiler (loaded through :mod:`ctypes`); when no compiler is
    available it falls back to an optimized flat pure-Python relaxation
    that is still ~2.5x faster than the naive nested loop.  Because an
    idealization only perturbs edges of the affected kinds/categories,
    each measurement is evaluated as a *delta* against the
    closest already-measured subset of its target set: the unchanged
    node prefix is copied from the parent state, and when only a few
    edges change (per-instruction :class:`EventSelection` queries) a
    worklist re-relaxes just the nodes downstream of the affected-edge
    frontier instead of sweeping at all.

``parallel``
    A :mod:`concurrent.futures` process-pool fan-out over the
    independent target sets of a power-set breakdown, with subset-reuse
    scheduling (smaller subsets first, shared unions measured once) in
    every worker.  Each worker holds its own ``batched`` engine; the
    driver falls back to the local batched engine whenever a pool
    cannot be created (restricted sandboxes, single-core containers
    where it would not pay off anyway).

Engines are selected through ``GraphCostAnalyzer(engine=...)`` or the
``--engine {naive,batched,parallel}`` CLI flag.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import random
import subprocess
import tempfile
from heapq import heappop, heappush
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

try:  # numpy accelerates latency rewriting and change detection
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the package
    np = None

import repro.obs as obs
from repro.core.categories import Category, EventSelection
from repro.graph.critical_path import longest_path
from repro.graph.idealize import GraphIdealizer
from repro.graph.model import DependenceGraph
from repro.lockfile import compile_lock

Target = Union[Category, EventSelection]
Key = FrozenSet[Target]

#: Engine names accepted by :func:`make_engine` and the CLI.
ENGINE_NAMES = ("naive", "batched", "parallel")

# ----------------------------------------------------------------------
# The native kernel: one C function, compiled on demand, ctypes-loaded.
# ----------------------------------------------------------------------

_KERNEL_SOURCE = r"""
#include <stdint.h>

/* Relax nodes v0..n_nodes-1 of a CSR graph sorted by destination.
 * dist[0..v0) must be prefilled (the reusable prefix); node order is
 * topological, so a single forward pass is exact.  Max-plus semantics
 * with a floor of zero: nodes with no surviving in-edge start at 0. */
void cp_sweep(int64_t n_nodes, const int64_t *cs, const int64_t *src,
              const int64_t *lat, int64_t *dist, int64_t v0)
{
    int64_t v, e, best, t;
    if (v0 < 1)
        v0 = 1;
    for (v = v0; v < n_nodes; v++) {
        best = 0;
        for (e = cs[v]; e < cs[v + 1]; e++) {
            t = dist[src[e]] + lat[e];
            if (t > best)
                best = t;
        }
        dist[v] = best;
    }
}
"""

_NATIVE_SENTINEL = object()
_native_fn = _NATIVE_SENTINEL  # module-level cache: compile at most once
_native_reason = "not attempted"
_native_warned = False


def _compile_locked(lib_path):
    """Compile the C sweep into *lib_path* (caller holds the lock).

    Writes to a pid-unique tmp then publishes with ``os.replace``.
    Returns None on success (or when another process already published
    the library while we waited), else a failure reason string.
    """
    if os.path.exists(lib_path):
        return None  # lost the race; winner already published
    src_path = lib_path[:-3] + ".c"
    with open(src_path, "w") as fh:
        fh.write(_KERNEL_SOURCE)
    tmp_path = f"{lib_path}.{os.getpid()}.tmp"
    errors = []
    for compiler in ("cc", "gcc", "clang"):
        proc = subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o",
             tmp_path, src_path],
            capture_output=True, timeout=60)
        if proc.returncode == 0:
            os.replace(tmp_path, lib_path)
            return None
        stderr = proc.stderr.decode(errors="replace").strip()
        detail = stderr.splitlines()[-1] if stderr \
            else f"exit {proc.returncode}"
        errors.append(f"{compiler}: {detail}")
    return "no working C compiler (" + "; ".join(errors) + ")"


def _compile_native_kernel():
    """Compile and load the C sweep.

    Returns ``(fn, reason)`` where *fn* is the ctypes function or None
    and *reason* states why (so a failed compile is never silent --
    :func:`native_kernel_status` and the CLI surface it).
    """
    if np is None:
        return None, "numpy unavailable"
    if os.environ.get("REPRO_ENGINE_NO_NATIVE"):
        return None, "disabled by REPRO_ENGINE_NO_NATIVE"
    digest = hashlib.sha256(_KERNEL_SOURCE.encode()).hexdigest()[:16]
    uid = getattr(os, "getuid", lambda: 0)()
    lib_path = os.path.join(
        tempfile.gettempdir(), f"repro-cp-kernel-{digest}-{uid}.so")
    try:
        if not os.path.exists(lib_path):
            # Advisory lock so concurrent processes/threads racing the
            # first compile don't clobber each other's in-flight cc
            # output; re-check under the lock -- the loser usually
            # finds the winner's published .so and skips the compile.
            with compile_lock(lib_path, "graph sweep"):
                reason = _compile_locked(lib_path)
            if reason is not None:
                return None, reason
        lib = ctypes.CDLL(lib_path)
        fn = lib.cp_sweep
        ptr = ctypes.POINTER(ctypes.c_int64)
        fn.argtypes = [ctypes.c_int64, ptr, ptr, ptr, ptr, ctypes.c_int64]
        fn.restype = None
        return fn, f"loaded ({lib_path})"
    except (OSError, subprocess.SubprocessError) as exc:
        return None, f"compile/load failed: {exc}"


def native_kernel():
    """The process-wide compiled sweep function (or None)."""
    global _native_fn, _native_reason
    if _native_fn is _NATIVE_SENTINEL:
        _native_fn, _native_reason = _compile_native_kernel()
        if _native_fn is None:
            obs.get_logger("engine").info(
                "native kernel unavailable: %s", _native_reason)
    return _native_fn


def native_kernel_status():
    """``(available, reason)`` for the C sweep kernel.

    *reason* is ``"not attempted"`` until something first asks for the
    kernel (the batched engine does so on construction).
    """
    if _native_fn is _NATIVE_SENTINEL:
        return False, "not attempted"
    return _native_fn is not None, _native_reason


def native_fallback_warning() -> Optional[str]:
    """A one-shot warning string when the C kernel *silently* failed.

    Returns a message the first time it is called after the kernel was
    attempted and failed for a reason other than the user explicitly
    opting out via ``REPRO_ENGINE_NO_NATIVE``; None otherwise.  The CLI
    prints it to stderr so "the C kernel silently failed to compile"
    regressions are visible without --metrics.
    """
    global _native_warned
    available, reason = native_kernel_status()
    if (available or _native_warned or reason == "not attempted"
            or os.environ.get("REPRO_ENGINE_NO_NATIVE")):
        return None
    _native_warned = True
    return (f"warning: native C sweep kernel unavailable ({reason}); "
            f"the batched engine is using the slower pure-Python "
            f"fallback. Set REPRO_ENGINE_NO_NATIVE=1 to silence.")


def _as_i64_ptr(arr):
    return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------


class NaiveEngine:
    """The reference oracle: one full pure-Python sweep per measurement."""

    name = "naive"

    def __init__(self, graph: DependenceGraph,
                 idealizer: Optional[GraphIdealizer] = None) -> None:
        self.graph = graph
        self.idealizer = idealizer or GraphIdealizer(graph)

    def cp_length(self, key: Iterable[Target]) -> int:
        """Critical-path length with every target in *key* idealized."""
        key = frozenset(key)
        obs.count("engine.naive.sweep")
        if key:
            lat = self.idealizer.latencies(key)
            dist = longest_path(self.graph, lat,
                                seed=self.idealizer.seed(key))
        else:
            dist = longest_path(self.graph)
        return max(dist) if dist else 0

    def cp_lengths(self, keys: Sequence[Iterable[Target]]) -> List[int]:
        """Batch form of :meth:`cp_length`; the oracle has no fast path."""
        with obs.span("engine.cp_batch", engine=self.name, keys=len(keys)):
            obs.observe("engine.batch_size", len(keys))
            return [self.cp_length(key) for key in keys]

    def close(self) -> None:
        """Engines own no resources by default; pools override this."""


class _State:
    """One measured idealization: its dist vector, latencies and seed."""

    __slots__ = ("key", "dist", "lat", "seed", "cp")

    def __init__(self, key, dist, lat, seed, cp):
        self.key = key
        self.dist = dist
        self.lat = lat
        self.seed = seed
        self.cp = cp


class BatchedEngine:
    """Vectorized CSR kernel + incremental critical-path recomputation.

    Parameters
    ----------
    native:
        ``None`` (default) uses the compiled C sweep when available,
        ``False`` forces the pure-Python flat kernel (exercised by the
        differential tests so the fallback stays correct).
    max_states:
        How many measured dist vectors to retain for delta reuse.
    incremental_max_edges:
        Delta sizes up to this many changed edges use the worklist
        re-relaxation; larger deltas use a prefix-reusing full sweep
        (broad category idealizations perturb so many edges that the
        cascade covers most of the graph and a sweep is cheaper).  The
        worklist also bails out to the sweep when its cascade grows
        past a fraction of the graph, so a pathological delta can never
        cost more than sweep + bounded probe.
    """

    name = "batched"

    def __init__(self, graph: DependenceGraph,
                 idealizer: Optional[GraphIdealizer] = None,
                 native: Optional[bool] = None,
                 max_states: int = 24,
                 incremental_max_edges: Optional[int] = None) -> None:
        if np is None:  # pragma: no cover - numpy ships with the package
            raise RuntimeError("the batched engine requires numpy")
        self.graph = graph
        self.idealizer = idealizer or GraphIdealizer(graph)
        if native in (None, True):
            self._native = native_kernel()
            status = native_kernel_status()[1]
        else:
            self._native = None
            status = "forced pure-Python (native=False)"
        obs.gauge("engine.native_kernel", 1 if self._native is not None else 0)
        obs.note("engine.native_kernel.status", status)
        self._max_states = max_states
        n = graph.num_nodes
        self._cs = np.ascontiguousarray(graph.column_data("csr"),
                                        dtype=np.int64)
        self._src = np.ascontiguousarray(graph.column_data("src"),
                                         dtype=np.int64) \
            if graph.num_edges else np.zeros(0, dtype=np.int64)
        self._base_lat = np.ascontiguousarray(graph.column_data("lat"),
                                              dtype=np.int64) \
            if graph.num_edges else np.zeros(0, dtype=np.int64)
        self._dst = np.repeat(np.arange(n, dtype=np.int64),
                              np.diff(self._cs)) if n else self._src[:0]
        # out-adjacency for the worklist and the pure-Python edge list,
        # both built lazily on first use
        self._out_dst: Optional[List[int]] = None
        self._out_start: Optional[List[int]] = None
        self._dst_list: Optional[List[int]] = None
        self._incremental_max_edges = (
            incremental_max_edges if incremental_max_edges is not None else 48)
        self._worklist_budget = max(1024, n // 16)
        self._states: Dict[Key, _State] = {}
        if n:
            base = self._sweep(self._base_lat, graph.seed_lat, None, 0)
            self._remember(_State(frozenset(), base, self._base_lat,
                                  graph.seed_lat, int(base.max())))

    # -- measurement ---------------------------------------------------

    def cp_length(self, key: Iterable[Target]) -> int:
        """Critical-path length for *key*, measured against the best
        available parent state (largest measured proper subset)."""
        key = frozenset(key)
        if self.graph.num_nodes == 0:
            return 0
        state = self._states.get(key)
        if state is None:
            state = self._measure(key)
        return state.cp

    def cp_lengths(self, keys: Sequence[Iterable[Target]]) -> List[int]:
        """Measure a batch, smallest target sets first (subset reuse)."""
        keys = [frozenset(key) for key in keys]
        with obs.span("engine.cp_batch", engine=self.name, keys=len(keys)):
            obs.observe("engine.batch_size", len(keys))
            # subset-reuse scheduling: measure smaller target sets first
            # so larger unions can be evaluated as one-group deltas
            for key in sorted(set(keys), key=len):
                self.cp_length(key)
            return [self.cp_length(key) for key in keys]

    def close(self) -> None:
        """Drop all cached measurement states."""
        self._states.clear()

    # -- internals -----------------------------------------------------

    def _measure(self, key: Key) -> _State:
        lat = self.idealizer.latencies_array(key)
        seed = self.idealizer.seed(key)
        parent = self._parent_of(key)
        changed = np.nonzero(lat != parent.lat)[0]
        if changed.size == 0 and seed == parent.seed:
            obs.count("engine.batched.reuse")
            dist = parent.dist
        elif changed.size <= self._incremental_max_edges:
            obs.count("engine.batched.worklist")
            obs.observe("engine.batched.delta_edges", int(changed.size))
            dist = self._relax_worklist(parent, lat, seed, changed)
        else:
            dist = self._relax_sweep(parent, lat, seed, changed)
        state = _State(key, dist, lat, seed, int(dist.max()))
        self._remember(state)
        return state

    def _parent_of(self, key: Key) -> _State:
        """The measured proper subset of *key* with the largest overlap."""
        best = self._states[frozenset()]
        for state in self._states.values():
            if len(state.key) > len(best.key) and state.key <= key:
                best = state
        return best

    def _remember(self, state: _State) -> None:
        if len(self._states) >= self._max_states:
            for old in self._states:
                if old:  # never evict the baseline
                    del self._states[old]
                    break
        self._states[state.key] = state

    def _relax_sweep(self, parent: _State, lat, seed: int, changed) -> "np.ndarray":
        """Full forward sweep, reusing the unchanged node prefix.

        Edges are CSR-sorted by destination and destinations are
        topologically ordered, so every node before the first changed
        edge's destination keeps its parent dist exactly.
        """
        v0 = int(self._dst[changed[0]]) if changed.size else 1
        if seed != parent.seed:
            v0 = 1
        return self._sweep(lat, seed, parent.dist, v0)

    def _sweep(self, lat, seed: int, prefix, v0: int) -> "np.ndarray":
        n = self.graph.num_nodes
        v0 = max(1, v0)
        obs.count("engine.batched.sweep.full")
        if self._native is not None:
            dist = np.empty(n, dtype=np.int64)
            if prefix is not None and v0 > 1:
                dist[:v0] = prefix[:v0]
            dist[0] = seed
            self._native(n, _as_i64_ptr(self._cs), _as_i64_ptr(self._src),
                         _as_i64_ptr(np.ascontiguousarray(lat)),
                         _as_i64_ptr(dist), v0)
            return dist
        # optimized pure-Python fallback: one flat relaxation over the
        # destination-sorted edge list (no per-node range bookkeeping)
        if self._dst_list is None:
            self._dst_list = self._dst.tolist()
        if prefix is not None and v0 > 1:
            dist = prefix[:v0].tolist() + [0] * (n - v0)
        else:
            dist = [0] * n
        dist[0] = seed
        e0 = int(self._cs[v0])
        src = self.graph.edge_src
        lat_list = lat.tolist()
        for s, l, d in zip(src[e0:], lat_list[e0:], self._dst_list[e0:]):
            t = dist[s] + l
            if t > dist[d]:
                dist[d] = t
        return np.asarray(dist, dtype=np.int64)

    def _relax_worklist(self, parent: _State, lat, seed: int,
                        changed) -> "np.ndarray":
        """Re-relax only nodes downstream of the affected-edge frontier.

        Nodes are processed in index (= topological) order via a heap,
        so each affected node is recomputed exactly once, after all of
        its predecessors are final.  Nodes whose recomputed dist equals
        the parent's stop the cascade; if the cascade exceeds the node
        budget (the delta turned out not to be local after all), the
        partial work is discarded in favour of the prefix-reusing
        sweep.
        """
        dist = parent.dist.tolist()
        cs = self.graph.csr_start
        src = self.graph.edge_src
        if self._out_start is None:
            order = np.argsort(self._src, kind="stable")
            self._out_dst = self._dst[order].tolist()
            self._out_start = np.searchsorted(
                self._src[order], np.arange(self.graph.num_nodes + 1)).tolist()
        out_start, out_dst = self._out_start, self._out_dst
        heap: List[int] = sorted({int(self._dst[e]) for e in changed.tolist()})
        if seed != parent.seed:
            dist[0] = seed
            for k in range(out_start[0], out_start[1]):
                heappush(heap, out_dst[k])
        budget = self._worklist_budget
        lat_at = lat.item  # python-int view of one latency entry
        while heap:
            v = heappop(heap)
            while heap and heap[0] == v:
                heappop(heap)
            budget -= 1
            if budget < 0:
                obs.count("engine.batched.worklist.bail")
                return self._relax_sweep(parent, lat, seed, changed)
            best = 0
            for e in range(cs[v], cs[v + 1]):
                t = dist[src[e]] + lat_at(e)
                if t > best:
                    best = t
            if best != dist[v]:
                dist[v] = best
                for k in range(out_start[v], out_start[v + 1]):
                    heappush(heap, out_dst[k])
        return np.asarray(dist, dtype=np.int64)


# ----------------------------------------------------------------------
# Process-pool fan-out
# ----------------------------------------------------------------------

_worker_engine: Optional[BatchedEngine] = None

#: Environment that must survive into pool children.  ``fork`` children
#: inherit the parent's environment for free, but ``spawn``/``forkserver``
#: children re-import the module and may race a parent that changed
#: these variables after startup, so every pool in this repository
#: captures them explicitly at submission time and re-applies them in
#: the worker initializer.
CHILD_ENV_VARS = ("REPRO_ENGINE_NO_NATIVE", "REPRO_ENGINE",
                  "REPRO_CACHE_DIR", "REPRO_SIM_ENGINE",
                  "REPRO_SIM_NO_NATIVE")


def derive_seed(tag: str, index: int = 0) -> int:
    """A deterministic per-worker seed.

    Derived by hashing rather than Python's ``hash`` builtin (which is
    salted per process via ``PYTHONHASHSEED``), so the same *(tag,
    index)* always yields the same seed in every process on every run.
    """
    blob = f"{tag}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def child_env() -> Dict[str, Optional[str]]:
    """Snapshot of :data:`CHILD_ENV_VARS` to ship to pool children.

    Unset variables are recorded as ``None`` so the child can *unset*
    them too -- propagation must be able to clear a stale setting, not
    just add ones.
    """
    return {name: os.environ.get(name) for name in CHILD_ENV_VARS}


def apply_child_env(env: Optional[Dict[str, Optional[str]]],
                    seed_tag: str = "pool", seed_index: int = 0) -> None:
    """Apply a parent environment snapshot inside a worker process.

    Re-arms the native-kernel decision (so a child honours a
    ``REPRO_ENGINE_NO_NATIVE`` it did not inherit) and seeds
    :mod:`random` with a deterministic derived seed.
    """
    global _native_fn, _native_reason
    if env:
        for name, value in env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    # the compile-at-most-once caches must re-decide under the applied
    # environment, not under whatever this process saw at import time
    _native_fn = _NATIVE_SENTINEL
    _native_reason = "not attempted"
    from repro.uarch import fastcore

    fastcore.reset_kernel_cache()
    random.seed(derive_seed(seed_tag, seed_index))


def _init_worker(graph: DependenceGraph,
                 env: Optional[Dict[str, Optional[str]]] = None,
                 counter=None) -> None:
    """Build one batched engine per worker process (payload ships once)."""
    global _worker_engine
    index = 0
    if counter is not None:
        with counter.get_lock():
            index = counter.value
            counter.value += 1
    apply_child_env(env, seed_tag="engine-pool", seed_index=index)
    _worker_engine = BatchedEngine(graph)


def _worker_cp_length(key: Key) -> int:
    return _worker_engine.cp_length(key)


class ParallelEngine:
    """Fan the independent measurements of a breakdown across processes.

    Single measurements and environments without working process pools
    degrade gracefully to the local :class:`BatchedEngine` (which every
    worker also runs internally, so results are identical by
    construction -- and checked by the differential harness anyway).
    """

    name = "parallel"

    def __init__(self, graph: DependenceGraph,
                 idealizer: Optional[GraphIdealizer] = None,
                 max_workers: Optional[int] = None) -> None:
        self.graph = graph
        self._local = BatchedEngine(graph, idealizer)
        self._max_workers = max_workers
        self._workers = 0
        self._pool = None
        self._pool_broken = False

    @property
    def idealizer(self) -> GraphIdealizer:
        return self._local.idealizer

    def cp_length(self, key: Iterable[Target]) -> int:
        """Single measurements run locally; pools only pay off in batch."""
        return self._local.cp_length(key)

    def cp_lengths(self, keys: Sequence[Iterable[Target]]) -> List[int]:
        """Fan a batch out across the worker pool, one graph per worker;
        falls back to the local batched engine if the pool is unusable."""
        keys = [frozenset(key) for key in keys]
        pool = self._ensure_pool() if len(keys) > 1 else None
        if pool is None:
            obs.count("engine.parallel.fallback_local")
            return self._local.cp_lengths(keys)
        todo = sorted(set(keys), key=len)
        with obs.span("engine.pool_dispatch", keys=len(todo),
                      workers=self._workers):
            obs.count("engine.parallel.pool_dispatch")
            obs.observe("engine.batch_size", len(keys))
            try:
                chunk = max(1, len(todo) // (2 * self._workers))
                lengths = dict(zip(todo, pool.map(_worker_cp_length, todo,
                                                  chunksize=chunk)))
            except Exception:
                self.close()
                self._pool_broken = True
                obs.count("engine.parallel.pool_error")
                return self._local.cp_lengths(keys)
        return [lengths[key] for key in keys]

    def _ensure_pool(self):
        if self._pool is None and not self._pool_broken:
            try:
                from concurrent.futures import ProcessPoolExecutor

                workers = self._max_workers or min(8, os.cpu_count() or 1)
                if workers < 2:
                    self._pool_broken = True
                    return None
                import multiprocessing

                counter = multiprocessing.Value("i", 0)
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker,
                    initargs=(self.graph, child_env(), counter))
                self._workers = workers
                obs.gauge("engine.pool.workers", workers)
            except Exception:  # pragma: no cover - platform specific
                self._pool_broken = True
                self._pool = None
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down and drop local state."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._local.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass


#: Engine registry, by CLI/API name.
ENGINES = {
    "naive": NaiveEngine,
    "batched": BatchedEngine,
    "parallel": ParallelEngine,
}


def make_engine(spec, graph: DependenceGraph,
                idealizer: Optional[GraphIdealizer] = None):
    """Build (or pass through) a cost engine.

    *spec* may be ``None`` (the naive oracle), an engine name from
    :data:`ENGINES`, an engine *class* / factory callable taking
    ``(graph, idealizer)``, or a ready engine instance.
    """
    if spec is None:
        spec = "naive"
    if isinstance(spec, str):
        try:
            cls = ENGINES[spec]
        except KeyError:
            raise ValueError(
                f"unknown engine {spec!r}; choose from {ENGINE_NAMES}"
            ) from None
        return cls(graph, idealizer)
    if isinstance(spec, type) or callable(spec):
        return spec(graph, idealizer)
    return spec
