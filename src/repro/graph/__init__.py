"""The dependence-graph model of a microexecution (Section 3 of the paper).

Five nodes per dynamic instruction (D, R, E, P, C) and twelve edge
kinds (Table 3) capture both architectural dependences and
microarchitectural resource constraints.  Costs and interaction costs
are computed by idealizing edges and re-measuring the critical path --
the efficient alternative to the 2^n idealized simulations.
"""

from repro.graph.model import NodeKind, EdgeKind, DependenceGraph
from repro.graph.builder import GraphBuilder, build_graph
from repro.graph.critical_path import longest_path, critical_path_edges, edge_kind_profile
from repro.graph.cost import GraphCostAnalyzer
from repro.graph.engine import (
    ENGINE_NAMES,
    BatchedEngine,
    NaiveEngine,
    ParallelEngine,
    make_engine,
)
from repro.graph.slack import (
    edge_slacks,
    instruction_cost,
    instruction_icost,
    instruction_slack,
    top_critical_instructions,
)

__all__ = [
    "NodeKind",
    "EdgeKind",
    "DependenceGraph",
    "GraphBuilder",
    "build_graph",
    "longest_path",
    "critical_path_edges",
    "edge_kind_profile",
    "GraphCostAnalyzer",
    "ENGINE_NAMES",
    "NaiveEngine",
    "BatchedEngine",
    "ParallelEngine",
    "make_engine",
    "edge_slacks",
    "instruction_cost",
    "instruction_icost",
    "instruction_slack",
    "top_critical_instructions",
]
