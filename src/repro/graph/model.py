"""Graph storage: five nodes per instruction, twelve edge kinds (Table 3).

The graph is stored in CSR form sorted by destination node.  Node
indices are ``inst_seq * 5 + kind`` with kinds ordered D, R, E, P, C;
because every Table 3 edge points from an earlier (instruction, kind)
pair to a later one, node-index order is a topological order, and the
longest-path DP is a single forward sweep.

Each edge carries up to two *latency components* tagged with the
breakdown category whose idealization removes them (e.g. a load's EP
edge has a DL1 component and a DMISS component).  Three edge kinds are
*removed outright* by an idealization rather than shortened: CD by an
infinite window, PD by perfect branch prediction, and PP by a perfect
data cache.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.core.categories import Category


class NodeKind(enum.IntEnum):
    """The five nodes per dynamic instruction (Table 3)."""

    D = 0  # dispatch into the window
    R = 1  # all data operands ready
    E = 2  # execution start
    P = 3  # execution complete
    C = 4  # commit


NODES_PER_INST = len(NodeKind)


class EdgeKind(enum.IntEnum):
    """The twelve dependence-edge kinds of Table 3."""

    DD = 0    # in-order dispatch (carries icache/ITLB miss latency)
    FBW = 1   # finite fetch bandwidth
    CD = 2    # finite re-order buffer (window); removed by WIN
    PD = 3    # control dependence (mispredict recovery); removed by BMISP
    DR = 4    # execution follows dispatch
    PR = 5    # data dependences (register and memory)
    RE = 6    # execute after ready (FU / issue-slot contention)
    EP = 7    # execution latency
    PP = 8    # cache-line sharing; removed by DMISS
    PC = 9    # commit follows completion
    CC = 10   # in-order commit (carries store-BW contention)
    CBW = 11  # commit bandwidth


#: Edge kinds an idealization removes entirely (kind -> category index).
REMOVAL_CATEGORY = {
    EdgeKind.CD: Category.WIN.index,
    EdgeKind.PD: Category.BMISP.index,
    EdgeKind.PP: Category.DMISS.index,
}

#: Sentinel meaning "this latency component belongs to no category".
NO_CATEGORY = -1


@dataclass(frozen=True)
class Edge:
    """A materialised view of one edge (for inspection and tests)."""

    src: int
    dst: int
    kind: EdgeKind
    latency: int
    cat1: int = NO_CATEGORY
    val1: int = 0
    cat2: int = NO_CATEGORY
    val2: int = 0

    @property
    def src_inst(self) -> int:
        return self.src // NODES_PER_INST

    @property
    def dst_inst(self) -> int:
        return self.dst // NODES_PER_INST

    @property
    def src_kind(self) -> NodeKind:
        return NodeKind(self.src % NODES_PER_INST)

    @property
    def dst_kind(self) -> NodeKind:
        return NodeKind(self.dst % NODES_PER_INST)


def node_id(seq: int, kind: NodeKind) -> int:
    """Flat node index of instruction *seq*'s node of *kind*."""
    return seq * NODES_PER_INST + int(kind)


#: List attribute -> column name in ``_col_arrays``.  For graphs
#: assembled from arrays (vectorized build, stitched segments, cache
#: loads) the python lists are materialised lazily from these columns
#: on first attribute access; array consumers (the batched engine, the
#: idealizer, the artifact cache) go through :meth:`column_data` and
#: never pay the conversion.
LAZY_LIST_COLUMNS = {
    "edge_src": "src",
    "edge_kind": "kind",
    "edge_lat": "lat",
    "edge_cat1": "cat1",
    "edge_val1": "val1",
    "edge_cat2": "cat2",
    "edge_val2": "val2",
    "csr_start": "csr",
}


class DependenceGraph:
    """CSR-stored dependence graph of one microexecution.

    Construct through :class:`repro.graph.builder.GraphBuilder`; edges
    must be appended in nondecreasing destination-node order (the
    builder guarantees this by emitting each instruction's incoming
    edges in node order).
    """

    def __init__(self, num_insts: int) -> None:
        self.num_insts = num_insts
        self.num_nodes = num_insts * NODES_PER_INST
        self.edge_src: List[int] = []
        self.edge_kind: List[int] = []
        self.edge_lat: List[int] = []
        self.edge_cat1: List[int] = []
        self.edge_val1: List[int] = []
        self.edge_cat2: List[int] = []
        self.edge_val2: List[int] = []
        # csr_start[v] .. csr_start[v+1] index the edges into node v
        self.csr_start: List[int] = [0]
        self._cur_dst = 0
        self._finalized = False
        # Seed latency on the first D node: instruction 0 has no
        # incoming DD edge, so its cold-start fetch delay (icache/ITLB
        # miss) lives here, tagged with the category that removes it.
        self.seed_lat = 0
        self.seed_cat = NO_CATEGORY
        self.seed_val = 0
        # optional int64 column cache, populated when the graph was
        # materialised from arrays (vectorized build, stitched segments,
        # cache loads); see column_data
        self._col_arrays = None

    def __getattr__(self, name: str):
        # Lazily rebuild a python edge list from the array columns.
        # Only reached when the attribute is absent from the instance
        # dict -- i.e. after from_arrays() dropped the eager lists.
        key = LAZY_LIST_COLUMNS.get(name)
        if key is not None:
            cols = self.__dict__.get("_col_arrays")
            if cols is not None and key in cols:
                value = cols[key].tolist()
                setattr(self, name, value)
                return value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    @classmethod
    def from_arrays(cls, num_insts: int,
                    cols: Dict[str, object]) -> "DependenceGraph":
        """A finalized graph backed directly by int64 edge columns.

        *cols* maps every :data:`LAZY_LIST_COLUMNS` column name
        (including ``csr``) to a destination-sorted int64 array.  The
        arrays are adopted as-is; the python list views materialise
        only if something actually asks for them.
        """
        graph = cls(num_insts)
        for attr in LAZY_LIST_COLUMNS:
            delattr(graph, attr)
        graph._col_arrays = dict(cols)
        graph._cur_dst = graph.num_nodes
        graph._finalized = True
        return graph

    def column_data(self, name: str):
        """One edge column for array consumers.

        Returns the cached int64 numpy column when the graph was
        materialised from arrays, else the backing python list --
        either way something ``np.asarray(..., dtype=...)`` accepts.
        *name* is one of ``src``/``kind``/``lat``/``cat1``/``val1``/
        ``cat2``/``val2``/``csr``.
        """
        cols = self._col_arrays
        if cols is not None and name in cols:
            return cols[name]
        if name == "csr":
            return self.csr_start
        return getattr(self, "edge_" + name)

    def set_seed(self, latency: int, cat: int = NO_CATEGORY,
                 val: int = 0) -> None:
        """Set the start-time seed of node 0 (instruction 0's D node)."""
        if latency < 0 or val < 0:
            raise ValueError("negative seed latency")
        self.seed_lat = latency
        self.seed_cat = cat
        self.seed_val = val

    # ------------------------------------------------------------------

    def add_edge(self, src: int, dst: int, kind: EdgeKind, latency: int,
                 cat1: int = NO_CATEGORY, val1: int = 0,
                 cat2: int = NO_CATEGORY, val2: int = 0) -> None:
        """Append one edge; *dst* must be >= every previous edge's dst."""
        if self._finalized:
            raise RuntimeError("graph already finalized")
        if dst < self._cur_dst:
            raise ValueError("edges must be added in destination order")
        if not 0 <= src < dst:
            raise ValueError(f"edge {src}->{dst} is not forward")
        if dst >= self.num_nodes:
            raise ValueError(f"node {dst} out of range")
        if latency < 0:
            raise ValueError("negative edge latency")
        while self._cur_dst < dst:
            self.csr_start.append(len(self.edge_src))
            self._cur_dst += 1
        self.edge_src.append(src)
        self.edge_kind.append(int(kind))
        self.edge_lat.append(latency)
        self.edge_cat1.append(cat1)
        self.edge_val1.append(val1)
        self.edge_cat2.append(cat2)
        self.edge_val2.append(val2)

    def finalize(self) -> None:
        """Close the graph: pad CSR offsets for trailing edge-less nodes."""
        while len(self.csr_start) <= self.num_nodes:
            self.csr_start.append(len(self.edge_src))
        self._finalized = True

    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    def edge(self, index: int, dst: Optional[int] = None) -> Edge:
        """Materialise the edge at CSR *index* directly, without scanning.

        *dst* may be supplied when the caller already knows the
        destination node (e.g. a critical-path backtrack); otherwise it
        is recovered from the CSR offsets by bisection.
        """
        if not 0 <= index < self.num_edges:
            raise IndexError(f"edge index {index} out of range")
        if dst is None:
            dst = bisect_right(self.csr_start, index) - 1
        return Edge(
            src=self.edge_src[index],
            dst=dst,
            kind=EdgeKind(self.edge_kind[index]),
            latency=self.edge_lat[index],
            cat1=self.edge_cat1[index],
            val1=self.edge_val1[index],
            cat2=self.edge_cat2[index],
            val2=self.edge_val2[index],
        )

    def in_edges(self, dst: int) -> Iterator[Edge]:
        """Materialised incoming edges of node *dst*."""
        for e in range(self.csr_start[dst], self.csr_start[dst + 1]):
            yield Edge(
                src=self.edge_src[e],
                dst=dst,
                kind=EdgeKind(self.edge_kind[e]),
                latency=self.edge_lat[e],
                cat1=self.edge_cat1[e],
                val1=self.edge_val1[e],
                cat2=self.edge_cat2[e],
                val2=self.edge_val2[e],
            )

    def edges(self) -> Iterator[Edge]:
        """All edges, in destination order."""
        for dst in range(self.num_nodes):
            yield from self.in_edges(dst)

    def edges_of_kind(self, kind: EdgeKind) -> Iterator[Edge]:
        """All edges of one kind, in destination order."""
        want = int(kind)
        for dst in range(self.num_nodes):
            for e in range(self.csr_start[dst], self.csr_start[dst + 1]):
                if self.edge_kind[e] == want:
                    yield Edge(
                        src=self.edge_src[e], dst=dst, kind=kind,
                        latency=self.edge_lat[e],
                        cat1=self.edge_cat1[e], val1=self.edge_val1[e],
                        cat2=self.edge_cat2[e], val2=self.edge_val2[e],
                    )

    def to_dot(self, max_insts: Optional[int] = 20) -> str:
        """Graphviz rendering of (a prefix of) the graph, for Figure 2-style
        visualisation."""
        limit = self.num_insts if max_insts is None else min(max_insts, self.num_insts)
        node_limit = limit * NODES_PER_INST
        lines = ["digraph microexecution {", "  rankdir=LR;"]
        for seq in range(limit):
            for kind in NodeKind:
                nid = node_id(seq, kind)
                lines.append(f'  n{nid} [label="{kind.name}{seq}"];')
        for dst in range(node_limit):
            for edge in self.in_edges(dst):
                if edge.src >= node_limit:
                    continue
                lines.append(
                    f'  n{edge.src} -> n{edge.dst} '
                    f'[label="{edge.kind.name}:{edge.latency}"];'
                )
        lines.append("}")
        return "\n".join(lines)
