"""Building the dependence graph of a simulated execution.

The builder consumes a :class:`repro.uarch.events.SimResult` and emits
the Table 3 edges, with measured latencies where Figure 5b marks them
dynamic, and configuration constants where it marks them static.  It
includes the three Table 2 refinements over prior work: five nodes per
instruction, explicit FBW/CBW bandwidth edges, and PP cache-line
sharing edges.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy backs the vectorized fast path; the loop is the fallback
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the package
    np = None

import repro.obs as obs
from repro.core.categories import Category
from repro.graph.model import (
    NO_CATEGORY,
    NODES_PER_INST,
    DependenceGraph,
    EdgeKind,
    NodeKind,
    node_id,
)
from repro.isa.instructions import Opcode
from repro.uarch.events import LazyEvents, SimResult

#: Version of the graph-construction model.  Participates in the
#: content-addressed artifact-cache key (:mod:`repro.pipeline.artifacts`);
#: bump it whenever the emitted edges change meaning or shape, so stale
#: cached graphs can never be mistaken for current ones.
GRAPH_MODEL_VERSION = 1

_DL1 = Category.DL1.index
_BW = Category.BW.index
_DMISS = Category.DMISS.index
_SHALU = Category.SHALU.index
_LGALU = Category.LGALU.index
_IMISS = Category.IMISS.index

# the per-event and per-instruction fields vectorized emission gathers,
# pulled through one tuple attrgetter per object (a single pass through
# the Python attribute machinery instead of one per field)
_EV_FIELDS = operator.attrgetter(
    "icache_delay", "mispredicted", "fu_contention", "store_bw_delay",
    "pp_partner", "dl1_component", "miss_component", "exec_latency")
_INST_FIELDS = operator.attrgetter("static.opcode", "taken")

# opclass groups driving the EP edge: 0 memory, 1 short ALU, 2 long
# ALU, 3 everything else (branches)
_OPGROUP = {}
for _op in Opcode:
    _cls = _op.opclass
    _OPGROUP[_op] = (0 if _cls.is_mem else
                     1 if _cls.is_short_alu else
                     2 if _cls.is_long_alu else 3)


class GraphBuilder:
    """Constructs a :class:`DependenceGraph` from simulator events.

    Parameters
    ----------
    model_taken_branch_breaks:
        When true (the default), a one-cycle DD latency is added after
        every taken branch, modelling the end of the fetch group.  The
        paper's model omits this; the ablation benchmark measures the
        accuracy it buys on our machine (whose fetch groups end at the
        first taken branch).
    """

    def __init__(self, model_taken_branch_breaks: bool = True,
                 vectorized: Optional[bool] = None) -> None:
        self.model_taken_branch_breaks = model_taken_branch_breaks
        # None = auto: use the numpy fast path when numpy is importable.
        # The reference loop stays available (vectorized=False) and the
        # differential suite pins the two paths edge-for-edge identical.
        self.vectorized = (np is not None) if vectorized is None else vectorized

    def build(self, result: SimResult) -> DependenceGraph:
        """Construct the Table 3 graph of one simulated run."""
        with obs.span("graph.build", insns=len(result.trace.insts)) as sp:
            if self.vectorized and np is not None:
                graph = self._build_vectorized(result)
            else:
                graph = self._build(result)
            sp.set(edges=graph.num_edges)
        return graph

    def _build_vectorized(self, result: SimResult) -> DependenceGraph:
        """Array-at-a-time construction; identical output to :meth:`_build`."""
        insts = result.trace.insts
        cols, seed = emit_edge_arrays(
            insts, result.events, result.config,
            breaks=self.model_taken_branch_breaks,
            trace=result.trace)
        return graph_from_arrays(len(insts), cols, seed)

    def _build(self, result: SimResult) -> DependenceGraph:
        trace = result.trace
        events = result.events
        insts = trace.insts
        cfg = result.config
        n = len(insts)
        graph = DependenceGraph(n)
        if n == 0:
            graph.finalize()
            return graph

        fbw = cfg.fetch_width
        cbw = cfg.commit_width
        window = cfg.window_size
        recovery = cfg.mispredict_recovery
        wakeup_extra = cfg.issue_wakeup - 1
        c2c = cfg.complete_to_commit
        breaks = self.model_taken_branch_breaks

        for i in range(n):
            ev = events[i]
            inst = insts[i]
            d_i = node_id(i, NodeKind.D)
            r_i = node_id(i, NodeKind.R)
            e_i = node_id(i, NodeKind.E)
            p_i = node_id(i, NodeKind.P)
            c_i = node_id(i, NodeKind.C)

            # ---- edges into D: DD, FBW, CD, PD ----
            if i == 0 and ev.icache_delay:
                graph.set_seed(ev.icache_delay, _IMISS, ev.icache_delay)
            if i > 0:
                prev = insts[i - 1]
                break_lat = 1 if (breaks and prev.is_branch and prev.taken) else 0
                icache = ev.icache_delay
                # two tagged components: the icache/ITLB delay belongs
                # to imiss, the fetch-group break to bw (an ideal front
                # end fetches past taken branches)
                graph.add_edge(
                    node_id(i - 1, NodeKind.D), d_i, EdgeKind.DD,
                    icache + break_lat,
                    cat1=_IMISS if icache else NO_CATEGORY, val1=icache,
                    cat2=_BW if break_lat else NO_CATEGORY, val2=break_lat,
                )
                if i >= fbw:
                    graph.add_edge(
                        node_id(i - fbw, NodeKind.D), d_i, EdgeKind.FBW, 1)
                if i >= window:
                    graph.add_edge(
                        node_id(i - window, NodeKind.C), d_i, EdgeKind.CD, 0)
                if events[i - 1].mispredicted:
                    graph.add_edge(
                        node_id(i - 1, NodeKind.P), d_i, EdgeKind.PD, recovery)

            # ---- edges into R: DR, PR ----
            graph.add_edge(d_i, r_i, EdgeKind.DR, 1)
            seen = set()
            for j in inst.src_producers:
                if j >= 0 and j not in seen:
                    seen.add(j)
                    graph.add_edge(
                        node_id(j, NodeKind.P), r_i, EdgeKind.PR, wakeup_extra)
            if inst.is_load and inst.mem_producer >= 0 \
                    and inst.mem_producer not in seen:
                graph.add_edge(
                    node_id(inst.mem_producer, NodeKind.P), r_i, EdgeKind.PR, 0)

            # ---- edge into E: RE ----
            graph.add_edge(r_i, e_i, EdgeKind.RE, ev.fu_contention,
                           cat1=_BW, val1=ev.fu_contention)

            # ---- edges into P: EP, PP ----
            graph.add_edge(e_i, p_i, EdgeKind.EP, *self._ep_latency(inst, ev))
            if 0 <= ev.pp_partner < i:
                # Table 2's cache-line sharing edge.  Out-of-order issue
                # occasionally lets a *younger* load initiate the fill an
                # older load then shares; the graph is in program order,
                # so those (rare) backward sharings are left unmodelled.
                graph.add_edge(
                    node_id(ev.pp_partner, NodeKind.P), p_i, EdgeKind.PP, 0)

            # ---- edges into C: PC, CC, CBW ----
            graph.add_edge(p_i, c_i, EdgeKind.PC, c2c)
            if i > 0:
                graph.add_edge(node_id(i - 1, NodeKind.C), c_i, EdgeKind.CC,
                               ev.store_bw_delay,
                               cat1=_BW, val1=ev.store_bw_delay)
                if i >= cbw:
                    graph.add_edge(
                        node_id(i - cbw, NodeKind.C), c_i, EdgeKind.CBW, 1)

        graph.finalize()
        return graph

    @staticmethod
    def _ep_latency(inst, ev):
        """EP edge latency plus its category components.

        For memory operations the latency decomposes into the dl1
        access loop and the miss penalty; for a fill-sharing load the
        wait for the in-flight line is carried by the PP edge instead,
        so the EP edge holds only the hit-path components.
        """
        cls = inst.opclass
        if cls.is_mem:
            lat = ev.dl1_component + ev.miss_component
            return (lat, _DL1, ev.dl1_component, _DMISS, ev.miss_component)
        lat = ev.exec_latency
        if cls.is_short_alu:
            return (lat, _SHALU, lat, NO_CATEGORY, 0)
        if cls.is_long_alu:
            return (lat, _LGALU, lat, NO_CATEGORY, 0)
        return (lat, NO_CATEGORY, 0, NO_CATEGORY, 0)  # branches


def build_graph(result: SimResult,
                model_taken_branch_breaks: bool = True) -> DependenceGraph:
    """Convenience wrapper around :class:`GraphBuilder`."""
    return GraphBuilder(model_taken_branch_breaks).build(result)


# ----------------------------------------------------------------------
# Vectorized edge emission (the fast path, and the segment builder the
# parallel pipeline shards across worker processes)
# ----------------------------------------------------------------------

#: Column names of one emitted edge block, in DependenceGraph order.
EDGE_COLUMNS = ("src", "dst", "kind", "lat", "cat1", "val1", "cat2", "val2")


def emit_edge_arrays(insts: Sequence, events: Sequence, cfg,
                     breaks: bool = True, *,
                     start: int = 0,
                     global_ids: bool = False,
                     truncate: bool = False,
                     prev_inst=None,
                     prev_event=None,
                     trace=None) -> Tuple[Dict[str, "np.ndarray"],
                                          Optional[Tuple[int, int, int]]]:
    """Emit the Table 3 edges of a contiguous instruction range as arrays.

    *insts*/*events* cover instructions ``start .. start+len-1`` of a
    run.  Three call shapes share this function:

    - whole run (``start=0``): exactly :meth:`GraphBuilder._build`;
    - truncating window (``truncate=True``): a profiler-fragment-style
      local graph -- producers, fill partners and mispredict sources
      before *start* fall out of trace, node ids are window-local, and
      structural guards (fetch/commit bandwidth, window occupancy) use
      window-local positions, matching
      :class:`repro.analysis.sampled.WindowedRun` semantics edge for
      edge;
    - exact segment (``global_ids=True``): node ids, guards and
      cross-segment references stay global, and *prev_inst*/*prev_event*
      supply the one instruction of left context the first DD/PD edges
      need, so concatenating consecutive segments reproduces the
      monolithic build bit for bit (see :func:`stitch_graph`).

    When *events* is a :class:`~repro.uarch.events.LazyEvents` facade
    whose offset matches *start* and *trace* carries an
    ``InstColumns`` block, emission reads whole columns instead of
    iterating Python objects -- same edges, zero ``InstEvents``
    materialized (left context included: it comes from the facade's
    root columns, so *prev_inst*/*prev_event* are ignored).  Any other
    input shape takes the object-gathering path unchanged.

    Returns ``(columns, seed)`` where *columns* maps
    :data:`EDGE_COLUMNS` to int64 arrays sorted in CSR (destination,
    emission-slot) order, and *seed* is the ``(latency, category,
    value)`` start seed of node 0, or None when this segment does not
    own node 0.
    """
    if np is None:  # pragma: no cover - numpy ships with the package
        raise RuntimeError("vectorized edge emission requires numpy")
    n = len(insts)
    empty = {c: np.zeros(0, dtype=np.int64) for c in EDGE_COLUMNS}
    if n == 0:
        return empty, None

    fbw = cfg.fetch_width
    cbw = cfg.commit_width
    window = cfg.window_size
    recovery = cfg.mispredict_recovery
    wakeup_extra = cfg.issue_wakeup - 1
    c2c = cfg.complete_to_commit

    # which producer references survive, and how they map to node space
    keep_floor = start if truncate else 0
    src_rebase = 0 if global_ids else start
    node_off = start if global_ids else 0

    local = np.arange(n, dtype=np.int64)
    guard = local + (start if global_ids else 0)
    abs_idx = local + start
    nid5 = (local + node_off) * 5

    # the columnar plane applies when the event facade's window lines
    # up with [start, start+n) of its root and the trace carries the
    # instruction column block (real traces do; WindowedRun-style
    # stand-ins fall back to the object path, which stays the oracle)
    ecols = icols = None
    if isinstance(events, LazyEvents) and len(events) == n \
            and events.offset == start:
        getter = getattr(trace, "inst_columns", None)
        block_cols = getter() if callable(getter) else None
        if block_cols is not None and block_cols.n >= start + n:
            ecols, icols = events.columns, block_cols

    if ecols is not None:
        icache = ecols.column("icache_delay")
        misp = ecols.bool_column("mispredicted")
        fu = ecols.column("fu_contention")
        sbw = ecols.column("store_bw_delay")
        pp = ecols.column("pp_partner")
        dl1c = ecols.column("dl1_component")
        missc = ecols.column("miss_component")
        execl = ecols.column("exec_latency")
        opgroup = icols.opgroup[start:start + n]
        taken_br = icols.taken_br[start:start + n]
    else:
        # one attribute-gathering pass per object stream: a single tuple
        # attrgetter amortizes the Python attribute machinery across all
        # fields at once (it is the dominant cost of object emission)
        ev_mat = np.array([_EV_FIELDS(ev) for ev in events], dtype=np.int64)
        icache, misp_i, fu, sbw, pp, dl1c, missc, execl = ev_mat.T
        misp = misp_i.astype(np.bool_)
        op_tk = [_INST_FIELDS(inst) for inst in insts]
        opgroup = np.fromiter((_OPGROUP[op] for op, _ in op_tk), np.int64, n)
        taken = np.fromiter((bool(t) for _, t in op_tk), np.bool_, n)
        taken_br = (opgroup == 3) & taken  # group 3 == OpClass.BRANCH
        if global_ids and start > 0 and prev_event is None \
                and isinstance(events, LazyEvents) and events.offset == start:
            prev_event = LazyEvents(events.root)[start - 1]

    blocks: List[Tuple["np.ndarray", ...]] = []

    def block(src, dst, kind, lat, slot, cat1=None, val1=None,
              cat2=None, val2=None):
        m = len(src)
        if m == 0:
            return
        zeros = np.zeros(m, dtype=np.int64)
        none = np.full(m, NO_CATEGORY, dtype=np.int64)
        blocks.append((
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.full(m, int(kind), dtype=np.int64),
            np.asarray(lat, dtype=np.int64),
            none if cat1 is None else np.asarray(cat1, dtype=np.int64),
            zeros if val1 is None else np.asarray(val1, dtype=np.int64),
            none if cat2 is None else np.asarray(cat2, dtype=np.int64),
            zeros if val2 is None else np.asarray(val2, dtype=np.int64),
            np.full(m, slot, dtype=np.int64),
        ))

    D, R, E, P, C = range(5)

    # ---- edges into D: DD(0), FBW(1), CD(2), PD(3) ----
    if n > 1:
        break_lat = (taken_br[:-1].astype(np.int64) if breaks
                     else np.zeros(n - 1, dtype=np.int64))
        ic = icache[1:]
        block(nid5[:-1] + D, nid5[1:] + D, EdgeKind.DD, ic + break_lat, 0,
              cat1=np.where(ic > 0, _IMISS, NO_CATEGORY), val1=ic,
              cat2=np.where(break_lat > 0, _BW, NO_CATEGORY), val2=break_lat)
    if global_ids and start > 0 and (icols is not None
                                     or prev_inst is not None):
        if icols is not None:  # left context straight from the columns
            prev_break = 1 if (breaks and bool(icols.taken_br[start - 1])) \
                else 0
        else:
            prev_break = 1 if (breaks and prev_inst.is_branch
                               and prev_inst.taken) else 0
        ic0 = int(icache[0])
        block([(start - 1) * 5 + D], [nid5[0] + D], EdgeKind.DD,
              [ic0 + prev_break], 0,
              cat1=[_IMISS if ic0 else NO_CATEGORY], val1=[ic0],
              cat2=[_BW if prev_break else NO_CATEGORY], val2=[prev_break])
    sel = np.nonzero(guard >= fbw)[0]
    block(nid5[sel] + D - 5 * fbw, nid5[sel] + D, EdgeKind.FBW,
          np.ones(len(sel), dtype=np.int64), 1)
    sel = np.nonzero(guard >= window)[0]
    block(nid5[sel] + C - 5 * window, nid5[sel] + D, EdgeKind.CD,
          np.zeros(len(sel), dtype=np.int64), 2)
    sel = np.nonzero(misp[:-1])[0] + 1 if n > 1 else np.zeros(0, dtype=np.int64)
    block(nid5[sel - 1] + P, nid5[sel] + D, EdgeKind.PD,
          np.full(len(sel), recovery, dtype=np.int64), 3)
    if global_ids and start > 0:
        prev_misp = (bool(events.root.column("mispredicted")[start - 1])
                     if ecols is not None
                     else prev_event is not None and prev_event.mispredicted)
        if prev_misp:
            block([(start - 1) * 5 + P], [nid5[0] + D], EdgeKind.PD,
                  [recovery], 3)

    # ---- edges into R: DR(0), PR (producer order, then the memory
    # producer); the tight loop only touches instructions' producer
    # tuples, so it stays cheap relative to the array work ----
    block(nid5 + D, nid5 + R, EdgeKind.DR, np.ones(n, dtype=np.int64), 0)
    if icols is not None:
        # the trace's deduplicated-producer CSR, filtered by keep_floor
        # at emission time.  Slot numbers are first-occurrence positions
        # (not renumbered over the kept subset, as the object loop
        # does); the lexsort only consumes their relative order within a
        # destination, which both numberings share, and the memory
        # producer's slot (count+1) stays strictly last either way.
        starts = icols.pr_start[start:start + n + 1]
        lo, hi = int(starts[0]), int(starts[n])
        prod = icols.pr_prod[lo:hi]
        counts = np.diff(starts)
        dst_local = np.repeat(local, counts)
        pos = np.arange(lo, hi, dtype=np.int64) - np.repeat(starts[:-1],
                                                            counts)
        keep = prod >= keep_floor
        mem = icols.mem_extra[start:start + n]
        msel = np.nonzero(mem >= keep_floor)[0]
        pr_src = np.concatenate((
            (prod[keep] - src_rebase) * 5 + P,
            (mem[msel] - src_rebase) * 5 + P))
        if len(pr_src):
            m = len(pr_src)
            ks = int(np.count_nonzero(keep))
            blocks.append((
                pr_src,
                np.concatenate((nid5[dst_local[keep]] + R,
                                nid5[msel] + R)),
                np.full(m, int(EdgeKind.PR), dtype=np.int64),
                np.concatenate((
                    np.full(ks, wakeup_extra, dtype=np.int64),
                    np.zeros(m - ks, dtype=np.int64))),
                np.full(m, NO_CATEGORY, dtype=np.int64),
                np.zeros(m, dtype=np.int64),
                np.full(m, NO_CATEGORY, dtype=np.int64),
                np.zeros(m, dtype=np.int64),
                np.concatenate((pos[keep] + 1, counts[msel] + 1)),
            ))
    else:
        pr_src: List[int] = []
        pr_dst: List[int] = []
        pr_lat: List[int] = []
        pr_slot: List[int] = []
        for i, inst in enumerate(insts):
            slot = 1
            seen = set()
            r_node = int(nid5[i]) + R
            for j in inst.src_producers:
                if j >= keep_floor and j not in seen:
                    seen.add(j)
                    pr_src.append((j - src_rebase) * 5 + P)
                    pr_dst.append(r_node)
                    pr_lat.append(wakeup_extra)
                    pr_slot.append(slot)
                    slot += 1
            mem = inst.mem_producer
            if inst.is_load and mem >= keep_floor and mem not in seen:
                pr_src.append((mem - src_rebase) * 5 + P)
                pr_dst.append(r_node)
                pr_lat.append(0)
                pr_slot.append(slot)
        if pr_src:
            m = len(pr_src)
            blocks.append((
                np.asarray(pr_src, dtype=np.int64),
                np.asarray(pr_dst, dtype=np.int64),
                np.full(m, int(EdgeKind.PR), dtype=np.int64),
                np.asarray(pr_lat, dtype=np.int64),
                np.full(m, NO_CATEGORY, dtype=np.int64),
                np.zeros(m, dtype=np.int64),
                np.full(m, NO_CATEGORY, dtype=np.int64),
                np.zeros(m, dtype=np.int64),
                np.asarray(pr_slot, dtype=np.int64),
            ))

    # ---- edge into E: RE(0) ----
    block(nid5 + R, nid5 + E, EdgeKind.RE, fu, 0,
          cat1=np.full(n, _BW, dtype=np.int64), val1=fu)

    # ---- edges into P: EP(0), PP(1) ----
    is_mem = opgroup == 0
    ep_lat = np.where(is_mem, dl1c + missc, execl)
    ep_cat1 = np.select(
        [is_mem, opgroup == 1, opgroup == 2],
        [_DL1, _SHALU, _LGALU], NO_CATEGORY)
    ep_val1 = np.where(is_mem, dl1c, np.where(opgroup == 3, 0, execl))
    ep_cat2 = np.where(is_mem, _DMISS, NO_CATEGORY)
    ep_val2 = np.where(is_mem, missc, 0)
    block(nid5 + E, nid5 + P, EdgeKind.EP, ep_lat, 0,
          cat1=ep_cat1, val1=ep_val1, cat2=ep_cat2, val2=ep_val2)
    sel = np.nonzero((pp >= keep_floor) & (pp < abs_idx))[0]
    block((pp[sel] - src_rebase) * 5 + P, nid5[sel] + P, EdgeKind.PP,
          np.zeros(len(sel), dtype=np.int64), 1)

    # ---- edges into C: PC(0), CC(1), CBW(2) ----
    block(nid5 + P, nid5 + C, EdgeKind.PC,
          np.full(n, c2c, dtype=np.int64), 0)
    sel = np.nonzero(guard >= 1)[0]
    block(nid5[sel] + C - 5, nid5[sel] + C, EdgeKind.CC, sbw[sel], 1,
          cat1=np.full(len(sel), _BW, dtype=np.int64), val1=sbw[sel])
    sel = np.nonzero(guard >= cbw)[0]
    block(nid5[sel] + C - 5 * cbw, nid5[sel] + C, EdgeKind.CBW,
          np.ones(len(sel), dtype=np.int64), 2)

    if not blocks:
        return empty, None
    stacked = [np.concatenate([b[i] for b in blocks])
               for i in range(len(EDGE_COLUMNS) + 1)]
    order = np.lexsort((stacked[-1], stacked[1]))  # by (dst, slot)
    cols = {name: stacked[i][order] for i, name in enumerate(EDGE_COLUMNS)}

    seed = None
    owns_node_zero = truncate or start == 0
    if owns_node_zero and int(icache[0]):
        seed = (int(icache[0]), _IMISS, int(icache[0]))
    return cols, seed


def graph_from_arrays(num_insts: int, cols: Dict[str, "np.ndarray"],
                      seed: Optional[Tuple[int, int, int]]) -> DependenceGraph:
    """Assemble a finalized :class:`DependenceGraph` from edge columns.

    *cols* must already be in CSR (destination, emission) order --
    exactly what :func:`emit_edge_arrays` and :func:`stitch_graph`
    produce.
    """
    csr = np.searchsorted(
        cols["dst"], np.arange(num_insts * NODES_PER_INST + 1,
                               dtype=np.int64), side="left")
    # the graph adopts the int64 columns directly; the python list
    # views rebuild lazily if an object-plane consumer asks for them
    arrays = {
        name: np.ascontiguousarray(cols[name], dtype=np.int64)
        for name in ("src", "kind", "lat", "cat1", "val1", "cat2", "val2")
    }
    arrays["csr"] = np.ascontiguousarray(csr, dtype=np.int64)
    graph = DependenceGraph.from_arrays(num_insts, arrays)
    if seed is not None:
        graph.set_seed(*seed)
    return graph


def build_window_graph(result: SimResult, start: int, length: int,
                       model_taken_branch_breaks: bool = True
                       ) -> DependenceGraph:
    """The truncating window graph of ``result[start:start+length]``.

    Semantically identical to
    ``GraphBuilder().build(WindowedRun(result, start, length))`` --
    cross-window producers, fill partners and mispredict recoveries
    become out-of-trace -- but built directly from the original arrays,
    without materialising re-indexed instruction copies.
    """
    end = min(start + length, len(result.events))
    insts = result.trace.insts[start:end]
    events = result.events[start:end]
    cols, seed = emit_edge_arrays(
        insts, events, result.config, breaks=model_taken_branch_breaks,
        start=start, truncate=True, trace=result.trace)
    return graph_from_arrays(len(insts), cols, seed)


def emit_graph_segment(insts: Sequence, events: Sequence, cfg, start: int,
                       model_taken_branch_breaks: bool = True,
                       prev_inst=None, prev_event=None, trace=None):
    """One global-indexed segment of the monolithic graph (for stitching).

    The caller supplies the instruction before *start* as left context
    (None at the very beginning); on the columnar path (*trace* given,
    *events* a facade) the left context is read from the columns
    instead.  The returned ``(columns, seed)`` block covers exactly the
    edges whose destination instruction lies in
    ``start .. start+len(insts)-1`` of the full build.
    """
    return emit_edge_arrays(
        insts, events, cfg, breaks=model_taken_branch_breaks,
        start=start, global_ids=True,
        prev_inst=prev_inst, prev_event=prev_event, trace=trace)


def stitch_graph(num_insts: int,
                 segments: Sequence[Tuple[Dict[str, "np.ndarray"],
                                          Optional[Tuple[int, int, int]]]]
                 ) -> DependenceGraph:
    """Concatenate consecutive :func:`emit_graph_segment` blocks.

    Segments cover contiguous, disjoint instruction ranges in order, so
    their destination-sorted edge columns concatenate into the global
    CSR ordering directly; the result is bit-identical to the
    monolithic build (pinned by ``tests/test_graph_builder_vectorized``).
    """
    cols = {
        name: np.concatenate([seg[0][name] for seg in segments])
        if segments else np.zeros(0, dtype=np.int64)
        for name in EDGE_COLUMNS
    }
    seed = next((seg[1] for seg in segments if seg[1] is not None), None)
    return graph_from_arrays(num_insts, cols, seed)
