"""Building the dependence graph of a simulated execution.

The builder consumes a :class:`repro.uarch.events.SimResult` and emits
the Table 3 edges, with measured latencies where Figure 5b marks them
dynamic, and configuration constants where it marks them static.  It
includes the three Table 2 refinements over prior work: five nodes per
instruction, explicit FBW/CBW bandwidth edges, and PP cache-line
sharing edges.
"""

from __future__ import annotations


import repro.obs as obs
from repro.core.categories import Category
from repro.graph.model import (
    NO_CATEGORY,
    DependenceGraph,
    EdgeKind,
    NodeKind,
    node_id,
)
from repro.uarch.events import SimResult

_DL1 = Category.DL1.index
_BW = Category.BW.index
_DMISS = Category.DMISS.index
_SHALU = Category.SHALU.index
_LGALU = Category.LGALU.index
_IMISS = Category.IMISS.index


class GraphBuilder:
    """Constructs a :class:`DependenceGraph` from simulator events.

    Parameters
    ----------
    model_taken_branch_breaks:
        When true (the default), a one-cycle DD latency is added after
        every taken branch, modelling the end of the fetch group.  The
        paper's model omits this; the ablation benchmark measures the
        accuracy it buys on our machine (whose fetch groups end at the
        first taken branch).
    """

    def __init__(self, model_taken_branch_breaks: bool = True) -> None:
        self.model_taken_branch_breaks = model_taken_branch_breaks

    def build(self, result: SimResult) -> DependenceGraph:
        """Construct the Table 3 graph of one simulated run."""
        with obs.span("graph.build", insns=len(result.trace.insts)) as sp:
            graph = self._build(result)
            sp.set(edges=graph.num_edges)
        return graph

    def _build(self, result: SimResult) -> DependenceGraph:
        trace = result.trace
        events = result.events
        insts = trace.insts
        cfg = result.config
        n = len(insts)
        graph = DependenceGraph(n)
        if n == 0:
            graph.finalize()
            return graph

        fbw = cfg.fetch_width
        cbw = cfg.commit_width
        window = cfg.window_size
        recovery = cfg.mispredict_recovery
        wakeup_extra = cfg.issue_wakeup - 1
        c2c = cfg.complete_to_commit
        breaks = self.model_taken_branch_breaks

        for i in range(n):
            ev = events[i]
            inst = insts[i]
            d_i = node_id(i, NodeKind.D)
            r_i = node_id(i, NodeKind.R)
            e_i = node_id(i, NodeKind.E)
            p_i = node_id(i, NodeKind.P)
            c_i = node_id(i, NodeKind.C)

            # ---- edges into D: DD, FBW, CD, PD ----
            if i == 0 and ev.icache_delay:
                graph.set_seed(ev.icache_delay, _IMISS, ev.icache_delay)
            if i > 0:
                prev = insts[i - 1]
                break_lat = 1 if (breaks and prev.is_branch and prev.taken) else 0
                icache = ev.icache_delay
                # two tagged components: the icache/ITLB delay belongs
                # to imiss, the fetch-group break to bw (an ideal front
                # end fetches past taken branches)
                graph.add_edge(
                    node_id(i - 1, NodeKind.D), d_i, EdgeKind.DD,
                    icache + break_lat,
                    cat1=_IMISS if icache else NO_CATEGORY, val1=icache,
                    cat2=_BW if break_lat else NO_CATEGORY, val2=break_lat,
                )
                if i >= fbw:
                    graph.add_edge(
                        node_id(i - fbw, NodeKind.D), d_i, EdgeKind.FBW, 1)
                if i >= window:
                    graph.add_edge(
                        node_id(i - window, NodeKind.C), d_i, EdgeKind.CD, 0)
                if events[i - 1].mispredicted:
                    graph.add_edge(
                        node_id(i - 1, NodeKind.P), d_i, EdgeKind.PD, recovery)

            # ---- edges into R: DR, PR ----
            graph.add_edge(d_i, r_i, EdgeKind.DR, 1)
            seen = set()
            for j in inst.src_producers:
                if j >= 0 and j not in seen:
                    seen.add(j)
                    graph.add_edge(
                        node_id(j, NodeKind.P), r_i, EdgeKind.PR, wakeup_extra)
            if inst.is_load and inst.mem_producer >= 0 \
                    and inst.mem_producer not in seen:
                graph.add_edge(
                    node_id(inst.mem_producer, NodeKind.P), r_i, EdgeKind.PR, 0)

            # ---- edge into E: RE ----
            graph.add_edge(r_i, e_i, EdgeKind.RE, ev.fu_contention,
                           cat1=_BW, val1=ev.fu_contention)

            # ---- edges into P: EP, PP ----
            graph.add_edge(e_i, p_i, EdgeKind.EP, *self._ep_latency(inst, ev))
            if 0 <= ev.pp_partner < i:
                # Table 2's cache-line sharing edge.  Out-of-order issue
                # occasionally lets a *younger* load initiate the fill an
                # older load then shares; the graph is in program order,
                # so those (rare) backward sharings are left unmodelled.
                graph.add_edge(
                    node_id(ev.pp_partner, NodeKind.P), p_i, EdgeKind.PP, 0)

            # ---- edges into C: PC, CC, CBW ----
            graph.add_edge(p_i, c_i, EdgeKind.PC, c2c)
            if i > 0:
                graph.add_edge(node_id(i - 1, NodeKind.C), c_i, EdgeKind.CC,
                               ev.store_bw_delay,
                               cat1=_BW, val1=ev.store_bw_delay)
                if i >= cbw:
                    graph.add_edge(
                        node_id(i - cbw, NodeKind.C), c_i, EdgeKind.CBW, 1)

        graph.finalize()
        return graph

    @staticmethod
    def _ep_latency(inst, ev):
        """EP edge latency plus its category components.

        For memory operations the latency decomposes into the dl1
        access loop and the miss penalty; for a fill-sharing load the
        wait for the in-flight line is carried by the PP edge instead,
        so the EP edge holds only the hit-path components.
        """
        cls = inst.opclass
        if cls.is_mem:
            lat = ev.dl1_component + ev.miss_component
            return (lat, _DL1, ev.dl1_component, _DMISS, ev.miss_component)
        lat = ev.exec_latency
        if cls.is_short_alu:
            return (lat, _SHALU, lat, NO_CATEGORY, 0)
        if cls.is_long_alu:
            return (lat, _LGALU, lat, NO_CATEGORY, 0)
        return (lat, NO_CATEGORY, 0, NO_CATEGORY, 0)  # branches


def build_graph(result: SimResult,
                model_taken_branch_breaks: bool = True) -> DependenceGraph:
    """Convenience wrapper around :class:`GraphBuilder`."""
    return GraphBuilder(model_taken_branch_breaks).build(result)
