"""Graph-based cost measurement (the Tune et al. post-mortem algorithm).

``cost(S)`` is the critical-path shortening obtained by idealizing the
events in *S* on the graph -- the efficient alternative to re-running
the simulator, and the measurement the icost algebra of
:mod:`repro.core.icost` consumes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Union

from repro.core.categories import Category, EventSelection, normalize_targets
from repro.graph.critical_path import longest_path
from repro.graph.idealize import GraphIdealizer
from repro.graph.model import DependenceGraph

Target = Union[Category, EventSelection]


class GraphCostAnalyzer:
    """Costs and critical-path lengths of one microexecution graph.

    Implements the :class:`repro.core.icost.CostProvider` protocol:
    ``cost(targets)`` and ``total``.  Critical-path lengths are memoised
    per target set, so the 2^n - 1 measurements of an n-way interaction
    cost reuse shared subsets across calls.
    """

    def __init__(self, graph: DependenceGraph) -> None:
        self.graph = graph
        self._idealizer = GraphIdealizer(graph)
        self._lengths: Dict[FrozenSet[Target], int] = {}
        self.base_length = self.cp_length(frozenset())

    # ------------------------------------------------------------------

    def cp_length(self, targets: Iterable[Target] = frozenset()) -> int:
        """Critical-path length with *targets* idealized."""
        key = normalize_targets(targets)
        cached = self._lengths.get(key)
        if cached is not None:
            return cached
        if key:
            lat = self._idealizer.latencies(key)
            dist = longest_path(self.graph, lat, seed=self._idealizer.seed(key))
        else:
            dist = longest_path(self.graph)
        length = max(dist) if dist else 0
        self._lengths[key] = length
        return length

    def cost(self, targets: Iterable[Target]) -> float:
        """Cycles saved by idealizing *targets* together (aggregate cost)."""
        return float(self.base_length - self.cp_length(targets))

    @property
    def total(self) -> float:
        """Baseline execution time proxy: the unidealized CP length."""
        return float(self.base_length)

    @property
    def measurements(self) -> int:
        """How many distinct CP lengths have been computed (for tests)."""
        return len(self._lengths)
