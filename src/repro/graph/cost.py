"""Graph-based cost measurement (the Tune et al. post-mortem algorithm).

``cost(S)`` is the critical-path shortening obtained by idealizing the
events in *S* on the graph -- the efficient alternative to re-running
the simulator, and the measurement the icost algebra of
:mod:`repro.core.icost` consumes.

The measurement itself is delegated to a pluggable *cost engine*
(:mod:`repro.graph.engine`): the naive full-sweep oracle, the
batched/incremental kernel, or the process-pool fan-out.  All engines
are bit-identical by contract (and by differential test).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Union

import repro.obs as obs
from repro.core.categories import Category, EventSelection, normalize_targets
from repro.graph.engine import make_engine
from repro.graph.idealize import GraphIdealizer
from repro.graph.model import DependenceGraph

Target = Union[Category, EventSelection]


class GraphCostAnalyzer:
    """Costs and critical-path lengths of one microexecution graph.

    Implements the :class:`repro.core.icost.CostProvider` protocol:
    ``cost(targets)`` and ``total``.  Critical-path lengths are memoised
    per target set, so the 2^n - 1 measurements of an n-way interaction
    cost reuse shared subsets across calls.

    *engine* selects how lengths are measured: an engine name
    (``"naive"``, ``"batched"``, ``"parallel"``), an engine factory, or
    a ready instance; ``None`` keeps the naive reference oracle.
    """

    def __init__(self, graph: DependenceGraph, engine=None) -> None:
        self.graph = graph
        self._idealizer = GraphIdealizer(graph)
        self._engine = make_engine(engine, graph, self._idealizer)
        self._lengths: Dict[FrozenSet[Target], int] = {}
        self.base_length = self.cp_length(frozenset())

    # ------------------------------------------------------------------

    def cp_length(self, targets: Iterable[Target] = frozenset()) -> int:
        """Critical-path length with *targets* idealized."""
        key = normalize_targets(targets)
        cached = self._lengths.get(key)
        if cached is None:
            obs.count("analyzer.cp.measure")
            cached = self._engine.cp_length(key)
            self._lengths[key] = cached
        else:
            obs.count("analyzer.cp.memo_hit")
        return cached

    def prefetch(self, target_sets: Iterable[Iterable[Target]]) -> None:
        """Measure many target sets at once (batch/parallel friendly).

        Engines may evaluate the batch out of order, in parallel, or
        with subset-reuse scheduling; results land in the same memo
        ``cost``/``cp_length`` read, so prefetching is purely an
        optimization.
        """
        keys = []
        seen = set()
        for targets in target_sets:
            key = normalize_targets(targets)
            if key not in self._lengths and key not in seen:
                seen.add(key)
                keys.append(key)
        if not keys:
            return
        for key, length in zip(keys, self._engine.cp_lengths(keys)):
            self._lengths[key] = length

    def cost(self, targets: Iterable[Target]) -> float:
        """Cycles saved by idealizing *targets* together (aggregate cost)."""
        return float(self.base_length - self.cp_length(targets))

    @property
    def total(self) -> float:
        """Baseline execution time proxy: the unidealized CP length."""
        return float(self.base_length)

    @property
    def measurements(self) -> int:
        """How many distinct CP lengths have been computed (for tests)."""
        return len(self._lengths)

    @property
    def engine(self):
        """The underlying cost engine (exposes ``name`` for reporting)."""
        return self._engine

    def close(self) -> None:
        """Release engine resources (worker pools, cached states)."""
        self._engine.close()
