"""Edge-latency transforms implementing Table 1 idealizations on the graph.

An idealization never re-runs the simulator: it rewrites edge latencies
(subtracting the latency component tagged with the idealized category)
and removes the three structural edge kinds whose constraint disappears
outright -- CD under an infinite window, PD under perfect prediction,
PP under a perfect data cache.  Removed edges are marked with a large
negative latency, which the max-plus longest-path sweep can never
select.
"""

from __future__ import annotations

from typing import Iterable, List, Union

import numpy as np

from repro.core.categories import Category, EventSelection
from repro.graph.model import DependenceGraph, EdgeKind, NODES_PER_INST

#: Latency marking a removed edge; dwarfs any real path length.
REMOVED = -(1 << 40)

#: Categories whose idealization removes edge kinds entirely: the
#: window removes CD, perfect prediction removes PD, a perfect data
#: cache removes PP, and infinite bandwidth removes the FBW/CBW
#: bandwidth edges (their one-cycle latency is structural, so zeroing
#: a component is not enough -- the constraint itself disappears).
_REMOVAL_KINDS = {
    Category.WIN: (int(EdgeKind.CD),),
    Category.BMISP: (int(EdgeKind.PD),),
    Category.DMISS: (int(EdgeKind.PP),),
    Category.BW: (int(EdgeKind.FBW), int(EdgeKind.CBW)),
}

#: Categories that have no per-instruction meaning.
_WHOLE_MACHINE_ONLY = (Category.WIN, Category.BW)


class GraphIdealizer:
    """Vectorised latency rewriting for one graph.

    The per-edge arrays are materialised once; each call to
    :meth:`latencies` produces a fresh latency list for the requested
    target set, suitable for :func:`repro.graph.critical_path.longest_path`.
    """

    def __init__(self, graph: DependenceGraph) -> None:
        self.graph = graph
        col = graph.column_data
        self._lat = np.asarray(col("lat"), dtype=np.int64)
        self._kind = np.asarray(col("kind"), dtype=np.int16)
        self._cat1 = np.asarray(col("cat1"), dtype=np.int16)
        self._val1 = np.asarray(col("val1"), dtype=np.int64)
        self._cat2 = np.asarray(col("cat2"), dtype=np.int16)
        self._val2 = np.asarray(col("val2"), dtype=np.int64)
        # owning instruction of each edge, by destination and by source
        # (edges are CSR-sorted by destination, so this is one repeat)
        csr = np.asarray(col("csr"), dtype=np.int64)
        self._dst_owner = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64) // NODES_PER_INST,
            np.diff(csr))
        # per-category latency deltas and removal masks, built lazily:
        # whole-category idealization then costs one subtract + one OR
        self._cat_delta: dict = {}
        self._cat_removed: dict = {}
        self._src_owner = np.asarray(col("src"),
                                     dtype=np.int64) // NODES_PER_INST

    # ------------------------------------------------------------------

    def latencies(self, targets: Iterable[Union[Category, EventSelection]]
                  ) -> List[int]:
        """Edge latencies with every target in *targets* idealized."""
        return self.latencies_array(targets).tolist()

    def latencies_array(self, targets: Iterable[Union[Category, EventSelection]]
                        ) -> "np.ndarray":
        """Idealized edge latencies as a fresh int64 array.

        The array form feeds the batched engines directly (change
        detection against a reference latency vector is a single
        vectorized comparison); :meth:`latencies` is its list view for
        the naive sweep.
        """
        lat = self._lat.copy()
        removed = np.zeros(len(lat), dtype=bool)
        for target in targets:
            if isinstance(target, Category):
                self._apply_category(target, lat, removed)
            elif isinstance(target, EventSelection):
                self._apply_selection(target, lat, removed)
            else:
                raise TypeError(f"not an idealization target: {target!r}")
        lat[removed] = REMOVED
        return lat

    def seed(self, targets: Iterable[Union[Category, EventSelection]]) -> int:
        """Node-0 seed latency with *targets* idealized."""
        graph = self.graph
        value = graph.seed_lat
        for target in targets:
            if isinstance(target, Category):
                if target.index == graph.seed_cat:
                    value -= graph.seed_val
            elif isinstance(target, EventSelection):
                if target.category.index == graph.seed_cat and 0 in target.seqs:
                    value -= graph.seed_val
        return max(0, value)

    # ------------------------------------------------------------------

    def _apply_category(self, cat: Category, lat, removed) -> None:
        ci = cat.index
        if not self._cat_delta:
            self._build_category_deltas()
        mask = self._cat_removed.get(ci)
        if mask is None:
            mask = np.zeros(len(lat), dtype=bool)
            for kind in _REMOVAL_KINDS.get(cat, ()):
                mask |= self._kind == kind
            self._cat_removed[ci] = mask
        lat -= self._cat_delta[ci]
        removed |= mask

    def _build_category_deltas(self) -> None:
        """Every category's per-edge latency delta in two scatter
        writes over a ``(categories + 1, edges)`` matrix -- the spare
        row swallows the untagged (-1) components -- instead of four
        full-array passes per category."""
        n = len(self._lat)
        ncats = max(c.index for c in Category) + 1
        deltas = np.zeros((ncats + 1, n), dtype=np.int64)
        cols = np.arange(n, dtype=np.int64)
        # (row, col) pairs are unique within each scatter: col is the
        # edge index, so fancy-indexed assignment/accumulate is exact
        deltas[np.where(self._cat1 < 0, ncats,
                        self._cat1).astype(np.int64), cols] = self._val1
        deltas[np.where(self._cat2 < 0, ncats,
                        self._cat2).astype(np.int64), cols] += self._val2
        for ci in range(ncats):
            self._cat_delta[ci] = deltas[ci]

    def _apply_selection(self, sel: EventSelection, lat, removed) -> None:
        cat = sel.category
        if cat in _WHOLE_MACHINE_ONLY:
            raise ValueError(
                f"{cat} is a whole-machine constraint; per-instruction "
                f"selections are not meaningful for it"
            )
        ci = cat.index
        seqs = np.fromiter(sel.seqs, dtype=np.int64, count=len(sel.seqs))
        in_dst = np.isin(self._dst_owner, seqs)
        lat -= self._val1 * ((self._cat1 == ci) & in_dst)
        lat -= self._val2 * ((self._cat2 == ci) & in_dst)
        if cat is Category.DMISS:
            # the sharer's PP wait disappears when its miss is idealized
            removed |= (self._kind == int(EdgeKind.PP)) & in_dst
        elif cat is Category.BMISP:
            # recovery edges hang off the *branch* (the edge source)
            in_src = np.isin(self._src_owner, seqs)
            removed |= (self._kind == int(EdgeKind.PD)) & in_src
