"""Interaction cost -- the paper's primary contribution (Section 2).

This package defines event categories, the ``cost``/``icost`` algebra
(including the recursive power-set definition), parallelism-aware
breakdowns, and report rendering.  It is deliberately independent of
*how* costs are measured: any object satisfying the
:class:`repro.core.icost.CostProvider` protocol works, whether backed
by dependence-graph analysis, multiple idealized simulations, or
shotgun-profiler fragments.
"""

from repro.core.categories import Category, EventSelection, BASE_CATEGORIES
from repro.core.icost import (
    CacheStats,
    CostProvider,
    CachingCostProvider,
    icost,
    icost_pair,
    icost_of_union,
    classify_interaction,
    Interaction,
)
from repro.core.breakdown import (
    Breakdown,
    BreakdownEntry,
    full_interaction_breakdown,
    interaction_breakdown,
    traditional_breakdown,
)
from repro.core.report import render_breakdown_table, render_stacked_bar
from repro.core.serialize import (
    breakdown_from_json,
    breakdown_to_json,
    breakdowns_to_csv,
    simresult_summary,
)

__all__ = [
    "Category",
    "EventSelection",
    "BASE_CATEGORIES",
    "CacheStats",
    "CostProvider",
    "CachingCostProvider",
    "icost",
    "icost_pair",
    "icost_of_union",
    "classify_interaction",
    "Interaction",
    "Breakdown",
    "BreakdownEntry",
    "interaction_breakdown",
    "full_interaction_breakdown",
    "traditional_breakdown",
    "render_breakdown_table",
    "render_stacked_bar",
    "breakdown_from_json",
    "breakdown_to_json",
    "breakdowns_to_csv",
    "simresult_summary",
]
