"""Rendering breakdowns: Table 4-style tables and Figure 1b stacked bars."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.breakdown import Breakdown


def render_breakdown_table(breakdowns: Dict[str, Breakdown],
                           title: str = "") -> str:
    """A Table 4-style text table: one row per category, one column per
    workload, values in percent of execution time."""
    if not breakdowns:
        return title
    columns = list(breakdowns)
    labels: List[str] = []
    for b in breakdowns.values():
        for label in b.labels():
            if label not in labels:
                labels.append(label)
    # keep Other / Total last, as in the paper
    for tail in ("Other", "Total"):
        if tail in labels:
            labels.remove(tail)
            labels.append(tail)

    label_width = max(len(s) for s in labels + ["Category"])
    col_width = max(7, max(len(c) for c in columns) + 1)
    lines = []
    if title:
        lines.append(title)
    header = "Category".ljust(label_width) + "".join(
        c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label in labels:
        row = [label.ljust(label_width)]
        for col in columns:
            try:
                value = breakdowns[col].percent(label)
                row.append(f"{value:.1f}".rjust(col_width))
            except KeyError:
                row.append("-".rjust(col_width))
        lines.append("".join(row))
    return "\n".join(lines)


def render_stacked_bar(breakdown: Breakdown, width: int = 60) -> str:
    """The Figure 1b visualisation, in text form.

    Positive categories stack upward from the axis (they can exceed
    100% because parallel interactions add cycles beyond the total),
    while negative (serial) interactions plot below the axis.  Each
    category becomes one bar segment proportional to its magnitude.
    """
    pos = [e for e in breakdown.entries
           if e.kind in ("base", "interaction", "other") and e.percent > 0]
    neg = [e for e in breakdown.entries
           if e.kind in ("base", "interaction", "other") and e.percent < 0]
    pos_total = sum(e.percent for e in pos)
    scale = width / pos_total if pos_total else 1.0

    lines = [f"{breakdown.workload or 'workload'}: "
             f"{breakdown.total_cycles:.0f} cycles "
             f"(+{pos_total:.1f}% / {sum(e.percent for e in neg):.1f}%)"]
    for entry in sorted(pos, key=lambda e: -e.percent):
        bar = "#" * max(1, round(entry.percent * scale))
        lines.append(f"  {entry.label:>14} |{bar} {entry.percent:.1f}%")
    if neg:
        lines.append(f"  {'':>14} +{'-' * width}  (serial interactions)")
        for entry in sorted(neg, key=lambda e: e.percent):
            bar = "=" * max(1, round(-entry.percent * scale))
            lines.append(f"  {entry.label:>14} |{bar} {entry.percent:.1f}%")
    return "\n".join(lines)


def render_comparison(breakdown_rows: Dict[str, Dict[str, float]],
                      columns: Sequence[str], title: str = "") -> str:
    """Generic table renderer for validation views (Table 7)."""
    labels = list(breakdown_rows)
    label_width = max((len(s) for s in labels + ["Category"]), default=8)
    col_width = max(9, max((len(c) for c in columns), default=5) + 2)
    lines = []
    if title:
        lines.append(title)
    header = "Category".ljust(label_width) + "".join(
        c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label in labels:
        row = [label.ljust(label_width)]
        for col in columns:
            value = breakdown_rows[label].get(col)
            row.append(("-" if value is None else f"{value:+.1f}").rjust(col_width))
        lines.append("".join(row))
    return "\n".join(lines)
