"""The cost / interaction-cost algebra (Section 2 of the paper).

Definitions implemented here, for events or sets of events:

- ``cost(S) = t - t(S)``: execution-time reduction from idealizing S.
- ``icost({S1, S2}) = cost(S1 u S2) - cost(S1) - cost(S2)``.
- For n >= 2 groups, the recursive power-set definition:
  ``icost(U) = cost(union U) - sum of icost(V) over proper subsets V``.

The sign of an interaction cost classifies how the groups interact:
zero means independent, positive means a parallel interaction (cycles
removable only by optimizing both together), negative means a serial
interaction (the groups are in series with each other but in parallel
with something else, so fully optimizing both is not worthwhile).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, Protocol, Union

import repro.obs as obs
from repro.core.categories import (
    Category,
    EventSelection,
    canonical_target_keys,
    normalize_targets,
)

Target = Union[Category, EventSelection]
Group = FrozenSet[Target]


class CostProvider(Protocol):
    """Anything that can measure aggregate costs of event sets.

    Implementations in this repository: graph analysis
    (:class:`repro.graph.cost.GraphCostAnalyzer`), re-simulation
    (:class:`repro.analysis.multisim.MultiSimCostProvider`) and the
    shotgun profiler (:class:`repro.profiler.shotgun.ShotgunCostProvider`).
    """

    def cost(self, targets: Iterable[Target]) -> float:
        """Aggregate cost of idealizing every target in *targets* together."""

    @property
    def total(self) -> float:
        """Baseline execution time, for normalising breakdowns."""


@dataclass
class CacheStats:
    """Hit/miss/prefetch accounting of one :class:`CachingCostProvider`."""

    hits: int = 0
    misses: int = 0
    prefetched: int = 0

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0


class CachingCostProvider:
    """Memoising wrapper; also counts underlying measurements."""

    def __init__(self, provider: CostProvider) -> None:
        self._provider = provider
        # keyed by canonical_target_keys(...) -- order/name independent
        self._cache: Dict[tuple, float] = {}
        self._stats = CacheStats()

    @property
    def calls(self) -> int:
        """Underlying measurements made so far (= cache misses)."""
        return self._stats.misses

    def stats(self) -> CacheStats:
        """A snapshot of the cache accounting, also pushed to obs gauges."""
        s = self._stats
        obs.gauge("icost.cache.hits", s.hits)
        obs.gauge("icost.cache.misses", s.misses)
        obs.gauge("icost.cache.prefetched", s.prefetched)
        return replace(s)

    def clear(self) -> None:
        """Drop every memoised cost and reset the statistics."""
        self._cache.clear()
        self._stats = CacheStats()

    def cost(self, targets: Iterable[Target]) -> float:
        """Memoised pass-through to the wrapped provider.

        Memo entries are keyed by the *canonical* target identity
        (:func:`repro.core.categories.canonical_target_keys`), so any
        ordering or renaming of the same logical target set hits the
        same entry.
        """
        key = normalize_targets(targets)
        ckey = canonical_target_keys(key)
        if ckey not in self._cache:
            self._stats.misses += 1
            obs.count("icost.cache.miss")
            self._cache[ckey] = self._provider.cost(key)
        else:
            self._stats.hits += 1
            obs.count("icost.cache.hit")
        return self._cache[ckey]

    def prefetch(self, target_sets: Iterable[Iterable[Target]]) -> None:
        """Forward a batch hint to providers that can exploit it.

        Providers with a ``prefetch`` method (the graph engines, the
        multisim process pool) measure the whole batch up front; plain
        providers ignore the hint.  Either way ``cost`` semantics and
        the ``calls`` counter are unchanged -- each distinct target set
        is still requested from the provider exactly once.
        """
        fn = getattr(self._provider, "prefetch", None)
        if fn is None:
            return
        keys = [normalize_targets(ts) for ts in target_sets]
        todo = [key for key in keys
                if canonical_target_keys(key) not in self._cache]
        if not todo:
            return
        self._stats.prefetched += len(todo)
        obs.count("icost.cache.prefetch", len(todo))
        fn(todo)

    @property
    def total(self) -> float:
        return self._provider.total


def as_group(group: Union[Target, Iterable[Target]]) -> Group:
    """Normalise a bare target or an iterable of targets into a group."""
    if isinstance(group, (Category, EventSelection)):
        return frozenset((group,))
    return normalize_targets(group)


def _proper_subsets(groups: FrozenSet[Group]) -> Iterable[FrozenSet[Group]]:
    items = tuple(groups)
    return (
        frozenset(c)
        for size in range(len(items))
        for c in combinations(items, size)
    )


def icost(provider: CostProvider,
          groups: Iterable[Union[Target, Iterable[Target]]]) -> float:
    """Interaction cost of two or more (sets of) events.

    Each element of *groups* is one event set S_i (a bare
    :class:`Category`/:class:`EventSelection` or an iterable of them).
    Implements the recursive power-set definition; the icost of a
    single group degenerates to its cost, and of the empty collection
    to zero.  Groups must be disjoint -- overlapping groups make the
    union/sum decomposition ill-defined.
    """
    normalised = frozenset(as_group(g) for g in groups)
    _check_disjoint(normalised)
    memo: Dict[FrozenSet[Group], float] = {}

    def rec(u: FrozenSet[Group]) -> float:
        if not u:
            return 0.0
        if u in memo:
            return memo[u]
        union: FrozenSet[Target] = frozenset(chain.from_iterable(u))
        value = provider.cost(union)
        for v in _proper_subsets(u):
            if v:
                value -= rec(v)
        memo[u] = value
        return value

    return rec(normalised)


def _check_disjoint(groups: FrozenSet[Group]) -> None:
    seen: set = set()
    for g in groups:
        overlap = seen & g
        if overlap:
            raise ValueError(f"groups overlap on {overlap}")
        seen |= g


def icost_pair(provider: CostProvider,
               a: Union[Target, Iterable[Target]],
               b: Union[Target, Iterable[Target]]) -> float:
    """``icost({a, b}) = cost(a u b) - cost(a) - cost(b)``."""
    return icost(provider, (a, b))


def icost_of_union(provider: CostProvider,
                   groups: Iterable[Union[Target, Iterable[Target]]]) -> float:
    """Sum of icosts over the whole power set = aggregate cost of the union.

    This is the identity the paper uses to argue that a breakdown over
    all interaction categories accounts for all (idealizable) cycles.
    """
    normalised = [as_group(g) for g in groups]
    union: FrozenSet[Target] = frozenset(chain.from_iterable(normalised))
    return provider.cost(union)


class Interaction(enum.Enum):
    """Classification of an interaction cost's sign."""

    INDEPENDENT = "independent"
    PARALLEL = "parallel"
    SERIAL = "serial"


def classify_interaction(value: float, epsilon: float = 1e-9) -> Interaction:
    """Classify an icost value: zero / positive / negative.

    *epsilon* absorbs floating-point noise from statistical providers
    (the shotgun profiler's fragment aggregation yields non-integers).
    """
    if value > epsilon:
        return Interaction.PARALLEL
    if value < -epsilon:
        return Interaction.SERIAL
    return Interaction.INDEPENDENT
