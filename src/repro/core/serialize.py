"""Exporting analysis results: CSV, JSON, and round-trips.

Breakdowns are the artefact downstream tools consume (plotting,
regression tracking across simulator versions, spreadsheet review), so
they serialize losslessly: every row keeps its kind, cycle count and
percentage, and a serialized breakdown reloads into an equivalent
:class:`~repro.core.breakdown.Breakdown`.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.core.breakdown import Breakdown, BreakdownEntry


def breakdown_to_json(breakdown: Breakdown) -> str:
    """A self-describing JSON document for one breakdown."""
    return json.dumps({
        "workload": breakdown.workload,
        "total_cycles": breakdown.total_cycles,
        "entries": [
            {
                "label": e.label,
                "cycles": e.cycles,
                "percent": e.percent,
                "kind": e.kind,
            }
            for e in breakdown.entries
        ],
    }, indent=2)


def breakdown_from_json(text: str) -> Breakdown:
    """Inverse of :func:`breakdown_to_json` (groups are not preserved)."""
    data = json.loads(text)
    entries = [
        BreakdownEntry(label=e["label"], cycles=e["cycles"],
                       percent=e["percent"], kind=e["kind"])
        for e in data["entries"]
    ]
    return Breakdown(workload=data["workload"],
                     total_cycles=data["total_cycles"], entries=entries)


def breakdowns_to_csv(breakdowns: Dict[str, Breakdown]) -> str:
    """A Table 4-shaped CSV: one row per category, one column per
    workload, values in percent."""
    columns = list(breakdowns)
    labels: List[str] = []
    for bd in breakdowns.values():
        for label in bd.labels():
            if label not in labels:
                labels.append(label)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["category"] + columns)
    for label in labels:
        row = [label]
        for col in columns:
            try:
                row.append(f"{breakdowns[col].percent(label):.2f}")
            except KeyError:
                row.append("")
        writer.writerow(row)
    return out.getvalue()


def simresult_summary(result) -> dict:
    """A JSON-ready summary of one simulation run."""
    return {
        "workload": result.trace.name,
        "instructions": len(result.events),
        "cycles": result.cycles,
        "ipc": result.ipc,
        "event_counts": result.event_counts(),
        "stats": dict(result.stats),
        "idealized": list(result.ideal.active()) if result.ideal else [],
    }
