"""Exporting analysis results: CSV, JSON, and round-trips.

Breakdowns are the artefact downstream tools consume (plotting,
regression tracking across simulator versions, spreadsheet review), so
they serialize losslessly: every row keeps its kind, cycle count and
percentage, and a serialized breakdown reloads into an equivalent
:class:`~repro.core.breakdown.Breakdown`.

The second half of the module is the *generic* result serializer the
analysis registry uses: any dataclass registered with
:func:`register_serializable` round-trips through
:func:`result_to_json` / :func:`result_from_json` (enums, tuples,
frozensets and non-string dict keys included), so every registry
``*Result`` gets ``to_json``/``from_json`` from one implementation
instead of a hand-written pair per analysis.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import io
import json
from typing import Any, Dict, List, Type

from repro.core.breakdown import Breakdown, BreakdownEntry

#: registered round-trippable types, addressed by class name
_SERIALIZABLE: Dict[str, type] = {}


def register_serializable(cls: type) -> type:
    """Register *cls* (a dataclass or Enum) for tagged round-trips.

    Usable as a class decorator.  Registration by class name is what
    lets :func:`from_jsonable` re-instantiate the right type from the
    ``__dc__`` / ``__enum__`` tags.
    """
    _SERIALIZABLE[cls.__name__] = cls
    return cls


def to_jsonable(value: Any) -> Any:
    """Encode *value* into JSON-safe data with type tags.

    Handles registered dataclasses (``__dc__``), enums (``__enum__``),
    tuples (``__tuple__``), sets/frozensets (``__set__``, stored
    sorted for deterministic output) and dicts with non-string keys
    (``__dict__`` items form); lists and JSON scalars pass through.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _SERIALIZABLE:
            raise TypeError(f"unregistered dataclass {name!r}; "
                            "use register_serializable")
        return {"__dc__": name,
                "fields": {f.name: to_jsonable(getattr(value, f.name))
                           for f in dataclasses.fields(value)}}
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if name not in _SERIALIZABLE:
            raise TypeError(f"unregistered enum {name!r}; "
                            "use register_serializable")
        return {"__enum__": name, "value": value.value}
    if isinstance(value, tuple):
        return {"__tuple__": [to_jsonable(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted((to_jsonable(v) for v in value),
                                  key=repr)}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: to_jsonable(v) for k, v in value.items()}
        return {"__dict__": [[to_jsonable(k), to_jsonable(v)]
                             for k, v in value.items()]}
    if isinstance(value, list):
        return [to_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__}")


def from_jsonable(data: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    if isinstance(data, dict):
        if "__dc__" in data:
            cls = _SERIALIZABLE[data["__dc__"]]
            return cls(**{k: from_jsonable(v)
                          for k, v in data["fields"].items()})
        if "__enum__" in data:
            return _SERIALIZABLE[data["__enum__"]](data["value"])
        if "__tuple__" in data:
            return tuple(from_jsonable(v) for v in data["__tuple__"])
        if "__set__" in data:
            return frozenset(from_jsonable(v) for v in data["__set__"])
        if "__dict__" in data:
            return {from_jsonable(k): from_jsonable(v)
                    for k, v in data["__dict__"]}
        return {k: from_jsonable(v) for k, v in data.items()}
    if isinstance(data, list):
        return [from_jsonable(v) for v in data]
    return data


def result_to_json(value: Any) -> str:
    """Serialize any registered result object to a JSON document."""
    return json.dumps(to_jsonable(value), indent=2, sort_keys=True)


def result_from_json(text: str) -> Any:
    """Inverse of :func:`result_to_json`."""
    return from_jsonable(json.loads(text))


class SerializableResult:
    """Mixin giving a registered dataclass uniform JSON round-trips."""

    def to_json(self) -> str:
        """This result as a self-describing JSON document."""
        return result_to_json(self)

    @classmethod
    def from_json(cls: Type["SerializableResult"], text: str):
        """Reload a result serialized by :meth:`to_json`."""
        value = result_from_json(text)
        if not isinstance(value, cls):
            raise TypeError(f"document holds {type(value).__name__}, "
                            f"not {cls.__name__}")
        return value


def breakdown_to_json(breakdown: Breakdown) -> str:
    """A self-describing JSON document for one breakdown."""
    return json.dumps({
        "workload": breakdown.workload,
        "total_cycles": breakdown.total_cycles,
        "entries": [
            {
                "label": e.label,
                "cycles": e.cycles,
                "percent": e.percent,
                "kind": e.kind,
            }
            for e in breakdown.entries
        ],
    }, indent=2)


def breakdown_from_json(text: str) -> Breakdown:
    """Inverse of :func:`breakdown_to_json` (groups are not preserved)."""
    data = json.loads(text)
    entries = [
        BreakdownEntry(label=e["label"], cycles=e["cycles"],
                       percent=e["percent"], kind=e["kind"])
        for e in data["entries"]
    ]
    return Breakdown(workload=data["workload"],
                     total_cycles=data["total_cycles"], entries=entries)


def breakdowns_to_csv(breakdowns: Dict[str, Breakdown]) -> str:
    """A Table 4-shaped CSV: one row per category, one column per
    workload, values in percent."""
    columns = list(breakdowns)
    labels: List[str] = []
    for bd in breakdowns.values():
        for label in bd.labels():
            if label not in labels:
                labels.append(label)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["category"] + columns)
    for label in labels:
        row = [label]
        for col in columns:
            try:
                row.append(f"{breakdowns[col].percent(label):.2f}")
            except KeyError:
                row.append("")
        writer.writerow(row)
    return out.getvalue()


def simresult_summary(result) -> dict:
    """A JSON-ready summary of one simulation run."""
    return {
        "workload": result.trace.name,
        "instructions": len(result.events),
        "cycles": result.cycles,
        "ipc": result.ipc,
        "event_counts": result.event_counts(),
        "stats": dict(result.stats),
        "idealized": list(result.ideal.active()) if result.ideal else [],
    }
