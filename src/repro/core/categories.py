"""Event categories: how stall causes are grouped into sets.

The paper's breakdowns (Table 4) use eight base categories that
partition every stall-causing event of the machine.  How events are
grouped is application-dependent ("a software prefetching optimization
might consider the set of events consisting of all cache misses from a
single static load"), so alongside the fixed :class:`Category` enum
this module provides :class:`EventSelection` for arbitrary
per-instruction event subsets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union


class Category(enum.Enum):
    """The eight base breakdown categories of Table 4.

    - ``DL1``: level-one data-cache access latency (the dl1 loop).
    - ``WIN``: finite-instruction-window stalls.
    - ``BW``: processor bandwidth (fetch, issue and commit bandwidth,
      including structural issue-port contention).
    - ``BMISP``: branch mispredictions.
    - ``DMISS``: data-cache misses (including DTLB walks).
    - ``SHALU``: one-cycle integer operations.
    - ``LGALU``: multi-cycle integer and floating-point operations.
    - ``IMISS``: instruction-cache misses (including ITLB walks).
    """

    DL1 = "dl1"
    WIN = "win"
    BW = "bw"
    BMISP = "bmisp"
    DMISS = "dmiss"
    SHALU = "shalu"
    LGALU = "lgalu"
    IMISS = "imiss"

    @property
    def index(self) -> int:
        """Stable small-integer id used by the graph's edge tagging."""
        return _CATEGORY_INDEX[self]

    def __str__(self) -> str:
        return self.value


_CATEGORY_INDEX = {cat: i for i, cat in enumerate(Category)}

#: All eight base categories, in Table 4's display order.
BASE_CATEGORIES: Tuple[Category, ...] = (
    Category.DL1,
    Category.WIN,
    Category.BW,
    Category.BMISP,
    Category.DMISS,
    Category.SHALU,
    Category.LGALU,
    Category.IMISS,
)


@dataclass(frozen=True)
class EventSelection:
    """A user-defined event set: one category restricted to chosen insts.

    Idealizing ``EventSelection(Category.DMISS, seqs)`` turns only the
    cache misses of the dynamic instructions in *seqs* into hits --
    exactly the per-static-load grouping a prefetching optimizer needs.
    Only graph-based cost providers support selections (re-simulating a
    per-instruction idealization is not meaningful in our simulator),
    which mirrors the paper's use of graphs for such analyses.
    """

    category: Category
    seqs: FrozenSet[int]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.seqs, frozenset):
            object.__setattr__(self, "seqs", frozenset(self.seqs))
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.category.value}[{len(self.seqs)} insts]"
            )

    def __str__(self) -> str:
        return self.name


#: Anything costable: a whole category or a per-instruction selection.
EventSetLike = Union[Category, EventSelection]


def normalize_targets(targets: Iterable[EventSetLike]) -> FrozenSet[EventSetLike]:
    """Validate and freeze a collection of cost targets."""
    frozen = frozenset(targets)
    for t in frozen:
        if not isinstance(t, (Category, EventSelection)):
            raise TypeError(f"not a cost target: {t!r}")
    return frozen


def target_key(target: EventSetLike) -> str:
    """A stable string identity for one cost target.

    Two targets that denote the same measurement get the same key: a
    selection's *display name* is excluded (it does not change which
    events are idealized), and its sequence set is serialised sorted.
    Unlike enum/frozenset iteration order -- which varies across
    processes because enum hashing is identity-based -- these keys sort
    identically everywhere, so they are safe to feed into persistent
    cache digests.
    """
    if isinstance(target, Category):
        return f"cat:{target.value}"
    if isinstance(target, EventSelection):
        seqs = ",".join(str(s) for s in sorted(target.seqs))
        return f"sel:{target.category.value}:{seqs}"
    raise TypeError(f"not a cost target: {target!r}")


def canonical_target_keys(targets: Iterable[EventSetLike]) -> Tuple[str, ...]:
    """The sorted :func:`target_key` tuple of a target set.

    This is *the* canonical identity of a set of cost targets:
    ``{a, b}`` and ``{b, a}`` (and any iteration order a frozenset
    happens to produce) map to the same tuple, so memo dictionaries and
    on-disk cache keys built from it can never split one logical entry
    in two.
    """
    return tuple(sorted(target_key(t) for t in normalize_targets(targets)))
