"""Parallelism-aware performance breakdowns (Section 2.3, Table 4).

A breakdown maps execution time to categories.  The traditional method
assigns each cycle to exactly one cause and is therefore order
dependent and unable to account for overlap; the interaction-cost
method adds one explicit category per displayed interaction, with an
``Other`` row absorbing the interactions not displayed (which can be
negative, exactly as in Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro.obs as obs
from repro.core.categories import BASE_CATEGORIES, Category, EventSelection
from repro.core.icost import CachingCostProvider, CostProvider, as_group, icost

Target = Union[Category, EventSelection]


@dataclass(frozen=True)
class BreakdownEntry:
    """One row of a breakdown table."""

    label: str
    cycles: float
    percent: float
    #: "base", "interaction", "other" or "total"
    kind: str = "base"
    #: the event groups this row refers to (empty for other/total)
    groups: Tuple = ()


@dataclass
class Breakdown:
    """An ordered collection of breakdown rows for one workload."""

    workload: str
    total_cycles: float
    entries: List[BreakdownEntry] = field(default_factory=list)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, label: str) -> BreakdownEntry:
        for entry in self.entries:
            if entry.label == label:
                return entry
        raise KeyError(label)

    def labels(self) -> List[str]:
        """Row labels, in display order."""
        return [entry.label for entry in self.entries]

    def percent(self, label: str) -> float:
        """The percent-of-execution-time value of one row."""
        return self[label].percent

    def displayed_sum(self) -> float:
        """Percent accounted for by base + interaction rows."""
        return sum(
            e.percent for e in self.entries if e.kind in ("base", "interaction")
        )

    def as_dict(self) -> Dict[str, float]:
        """``{label: percent}`` for every row."""
        return {e.label: e.percent for e in self.entries}


def _label_of(group) -> str:
    targets = sorted(as_group(group), key=str)
    return "+".join(str(t) for t in targets)


def _prefetch_unions(cached: CachingCostProvider, group_sets) -> None:
    """Hint the provider about every union a breakdown will measure.

    The power-set identity means the same union is shared by many
    icost evaluations; prefetching each distinct union once lets
    batched engines schedule subset reuse and parallel engines fan the
    independent measurements across workers.
    """
    from itertools import chain

    unions = []
    for groups in group_sets:
        unions.append(frozenset(chain.from_iterable(groups)))
    cached.prefetch(unions)


def interaction_breakdown(
    provider: CostProvider,
    base: Sequence[Union[Target, Iterable[Target]]] = BASE_CATEGORIES,
    focus: Optional[Union[Target, Iterable[Target]]] = None,
    workload: str = "",
) -> Breakdown:
    """The Table 4 breakdown: base costs, focus interactions, Other, Total.

    Every category in *base* gets a cost row.  When *focus* is given,
    one interaction row ``focus+cat`` is added per other base category
    (the pairwise icosts the Section 4 tutorial reads).  ``Other`` is
    the remaining execution time -- the sum of all interaction costs
    not displayed plus the un-idealizable machine residual -- and may
    be negative because serial interactions are negative.
    """
    cached = CachingCostProvider(provider)
    total = cached.total
    if total <= 0:
        raise ValueError("provider reports non-positive execution time")
    entries: List[BreakdownEntry] = []

    base_groups = [as_group(g) for g in base]
    focus_group = as_group(focus) if focus is not None else None
    if focus_group is not None and focus_group not in base_groups:
        raise ValueError("focus must be one of the base categories")

    needed = [(g,) for g in base_groups]
    if focus_group is not None:
        needed += [(focus_group, g) for g in base_groups if g != focus_group]
    with obs.span("breakdown.interaction", workload=workload,
                  rows=len(needed)) as sp:
        _prefetch_unions(cached, needed)

        for group in base_groups:
            cycles = cached.cost(group)
            entries.append(BreakdownEntry(
                label=_label_of(group), cycles=cycles,
                percent=100.0 * cycles / total, kind="base", groups=(group,),
            ))

        if focus_group is not None:
            for group in base_groups:
                if group == focus_group:
                    continue
                obs.count("breakdown.icost.eval")
                cycles = icost(cached, (focus_group, group))
                label = f"{_label_of(focus_group)}+{_label_of(group)}"
                entries.append(BreakdownEntry(
                    label=label, cycles=cycles, percent=100.0 * cycles / total,
                    kind="interaction", groups=(focus_group, group),
                ))
        stats = cached.stats()
        sp.set(cache_hits=stats.hits, cache_misses=stats.misses)

    displayed = sum(e.cycles for e in entries)
    entries.append(BreakdownEntry(
        label="Other", cycles=total - displayed,
        percent=100.0 * (total - displayed) / total, kind="other",
    ))
    entries.append(BreakdownEntry(
        label="Total", cycles=total, percent=100.0, kind="total",
    ))
    return Breakdown(workload=workload, total_cycles=total, entries=entries)


def full_interaction_breakdown(
    provider: CostProvider,
    base: Sequence[Union[Target, Iterable[Target]]],
    workload: str = "",
    max_categories: int = 5,
) -> Breakdown:
    """The complete Section 2.3 breakdown: one row per nonempty subset.

    With base categories {a, b, c} the rows are a, b, c, a+b, a+c, b+c,
    a+b+c -- every possible overlap gets an explicit interaction
    category, so the displayed rows sum exactly to the aggregate cost
    of idealizing everything (the power-set identity), and ``Other``
    degenerates to the un-idealizable machine residual.  Exponential in
    the number of categories, hence *max_categories*.
    """
    from itertools import combinations

    from repro.core.icost import icost

    base_groups = [as_group(g) for g in base]
    if len(base_groups) > max_categories:
        raise ValueError(
            f"{len(base_groups)} categories would need "
            f"{2 ** len(base_groups) - 1} rows; raise max_categories to "
            f"confirm you mean it"
        )
    cached = CachingCostProvider(provider)
    total = cached.total
    if total <= 0:
        raise ValueError("provider reports non-positive execution time")

    entries: List[BreakdownEntry] = []
    with obs.span("breakdown.powerset", workload=workload,
                  categories=len(base_groups),
                  rows=2 ** len(base_groups) - 1) as sp:
        _prefetch_unions(cached, (
            combo for size in range(1, len(base_groups) + 1)
            for combo in combinations(base_groups, size)
        ))

        for size in range(1, len(base_groups) + 1):
            for combo in combinations(base_groups, size):
                obs.count("breakdown.icost.eval")
                cycles = icost(cached, combo)
                label = "+".join(sorted(_label_of(g) for g in combo))
                entries.append(BreakdownEntry(
                    label=label, cycles=cycles, percent=100.0 * cycles / total,
                    kind="base" if size == 1 else "interaction", groups=combo,
                ))
        stats = cached.stats()
        sp.set(cache_hits=stats.hits, cache_misses=stats.misses)
    displayed = sum(e.cycles for e in entries)
    entries.append(BreakdownEntry(
        label="Other", cycles=total - displayed,
        percent=100.0 * (total - displayed) / total, kind="other",
    ))
    entries.append(BreakdownEntry(
        label="Total", cycles=total, percent=100.0, kind="total",
    ))
    return Breakdown(workload=workload, total_cycles=total, entries=entries)


def traditional_breakdown(
    provider: CostProvider,
    base: Sequence[Union[Target, Iterable[Target]]] = BASE_CATEGORIES,
    workload: str = "",
) -> Breakdown:
    """A traditional single-blame breakdown, for the Figure 1 contrast.

    Categories are idealized cumulatively in the order given, and each
    is blamed for the marginal time reduction.  The result depends on
    the chosen order and systematically hides parallel interactions --
    which is precisely the deficiency interaction costs repair; a unit
    test demonstrates the order dependence.
    """
    cached = CachingCostProvider(provider)
    total = cached.total
    if total <= 0:
        raise ValueError("provider reports non-positive execution time")
    entries: List[BreakdownEntry] = []
    idealized: List[Target] = []
    prev_time = total
    with obs.span("breakdown.traditional", workload=workload):
        for group in (as_group(g) for g in base):
            idealized.extend(group)
            time_now = total - cached.cost(frozenset(idealized))
            cycles = prev_time - time_now
            entries.append(BreakdownEntry(
                label=_label_of(group), cycles=cycles,
                percent=100.0 * cycles / total, kind="base", groups=(group,),
            ))
            prev_time = time_now
    entries.append(BreakdownEntry(
        label="Other", cycles=prev_time, percent=100.0 * prev_time / total,
        kind="other",
    ))
    entries.append(BreakdownEntry(
        label="Total", cycles=total, percent=100.0, kind="total",
    ))
    return Breakdown(workload=workload, total_cycles=total, entries=entries)
