"""repro: interaction-cost microarchitectural bottleneck analysis.

A from-scratch reproduction of Fields, Bodik, Hill & Newburn, "Using
Interaction Costs for Microarchitectural Bottleneck Analysis"
(MICRO-36, 2003): an out-of-order processor simulator, the
dependence-graph microexecution model, the cost/interaction-cost
algebra, parallelism-aware breakdowns, and the shotgun hardware
profiler -- plus the benchmark harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import quick_breakdown
    from repro.workloads import get_workload

    trace = get_workload("gzip")
    breakdown = quick_breakdown(trace, focus="dl1")
    print(breakdown.as_dict())
"""

from repro.core import (
    BASE_CATEGORIES,
    Category,
    EventSelection,
    Interaction,
    classify_interaction,
    icost,
    icost_pair,
    interaction_breakdown,
    render_breakdown_table,
    render_stacked_bar,
    traditional_breakdown,
)
from repro.uarch import IdealConfig, MachineConfig, simulate

__version__ = "1.0.0"

__all__ = [
    "BASE_CATEGORIES",
    "Category",
    "EventSelection",
    "Interaction",
    "classify_interaction",
    "icost",
    "icost_pair",
    "interaction_breakdown",
    "traditional_breakdown",
    "render_breakdown_table",
    "render_stacked_bar",
    "IdealConfig",
    "MachineConfig",
    "simulate",
    "quick_breakdown",
    "__version__",
]


def quick_breakdown(trace, focus=None, config=None):
    """Simulate *trace*, build its graph, and return a Table 4 breakdown.

    *focus* may be a :class:`Category` or its string value (e.g.
    ``"dl1"``); when given, pairwise interaction rows with every other
    base category are included.  Runs through an ephemeral
    :class:`repro.session.AnalysisSession`, so a configured artifact
    cache (``$REPRO_CACHE_DIR``) applies here too.
    """
    from repro.session import AnalysisSession

    if isinstance(focus, str):
        focus = Category(focus)
    session = AnalysisSession.for_trace(trace, config=config)
    provider = session.graph_provider()
    return interaction_breakdown(provider.analyzer, focus=focus,
                                 workload=trace.name)
